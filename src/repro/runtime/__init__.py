"""The CHARM runtime: the paper's primary contribution.

A cooperative, coroutine-based task runtime executing on the simulated
chiplet machine (:mod:`repro.hw`).  The package provides:

- generator-based lightweight tasks with suspend/resume at defined yield
  points (:mod:`repro.runtime.task`, :mod:`repro.runtime.ops`);
- per-core local task queues with hierarchical, chiplet-first work
  stealing (:mod:`repro.runtime.queues`);
- decentralized per-worker scheduling — each worker profiles its own
  remote-fill rate and adapts its ``spread_rate``
  (:mod:`repro.runtime.policy`, Algorithms 1 and 2 of the paper);
- the adaptive controller mapping approaches to concrete policies
  (:mod:`repro.runtime.controller`);
- the profiler (:mod:`repro.runtime.profiler`), NUMA-aware memory manager
  (:mod:`repro.runtime.memory_manager`) and synchronization primitives
  (:mod:`repro.runtime.sync`);
- the assembled runtime and paper-style API
  (:mod:`repro.runtime.runtime`, :mod:`repro.runtime.api`).
"""

from repro.runtime.ops import Access, AccessBatch, AccessRun, Compute, SpawnOp, WaitBarrier, WaitFuture, YieldPoint
from repro.runtime.task import Task, TaskState
from repro.runtime.sync import Barrier, Future
from repro.runtime.policy import (
    CharmPolicyConfig,
    CharmStrategy,
    SchedulingStrategy,
    StaticSpreadStrategy,
    update_location,
)
from repro.runtime.controller import AdaptiveController, Approach
from repro.runtime.runtime import Runtime, RunReport
from repro.runtime.api import Charm

__all__ = [
    "Access",
    "AccessBatch",
    "AccessRun",
    "Compute",
    "SpawnOp",
    "WaitBarrier",
    "WaitFuture",
    "YieldPoint",
    "Task",
    "TaskState",
    "Barrier",
    "Future",
    "CharmPolicyConfig",
    "CharmStrategy",
    "SchedulingStrategy",
    "StaticSpreadStrategy",
    "update_location",
    "AdaptiveController",
    "Approach",
    "Runtime",
    "RunReport",
    "Charm",
]
