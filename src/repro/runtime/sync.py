"""Synchronisation primitives: barriers and futures.

Both park *tasks*, never workers: a worker whose task blocks simply picks
up the next task from its queue.  This non-blocking behaviour is the core
advantage of CHARM's coroutines over thread-per-task ``std::async``
(paper section 5.5, Fig. 12).

Release timing: a barrier releases at the latest arrival time plus a
topology-dependent propagation cost supplied by the runtime (the slowest
core-to-core hop among participants — wider task spreads pay more, which
is the synchronisation overhead the paper's insight 3 describes).
"""

from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.runtime.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime


class Barrier:
    """A reusable barrier over ``parties`` tasks."""

    def __init__(self, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived: List[Tuple[Task, int, float]] = []  # (task, worker, time)
        self.releases = 0
        self.release_times: List[float] = []

    def arrive(self, task: Task, worker_id: int, now: float) -> Optional[List[Tuple[Task, int, float]]]:
        """Record an arrival.

        Returns the list of parked ``(task, worker, arrival)`` tuples when
        this arrival completes the barrier (caller releases them), else
        ``None``.
        """
        self._arrived.append((task, worker_id, now))
        if len(self._arrived) > self.parties:
            raise RuntimeError(
                f"barrier {self.name!r} overfilled: {len(self._arrived)} > {self.parties}"
            )
        if len(self._arrived) == self.parties:
            released = self._arrived
            self._arrived = []
            self.generation += 1
            self.releases += 1
            return released
        return None

    @property
    def waiting(self) -> int:
        return len(self._arrived)


class Future:
    """A write-once value with task waiters."""

    def __init__(self, name: str = "future"):
        self.name = name
        self.done = False
        self.value: Any = None
        self._waiters: List[Task] = []
        self._callbacks: List[Callable[["Future", float], None]] = []

    def add_waiter(self, task: Task) -> None:
        if self.done:
            raise RuntimeError("cannot wait on a resolved future")
        task.state = TaskState.BLOCKED
        self._waiters.append(task)

    def on_resolve(self, cb: Callable[["Future", float], None]) -> None:
        """Register a callback fired at resolution (used for async RPC)."""
        if self.done:
            raise RuntimeError("future already resolved")
        self._callbacks.append(cb)

    def resolve(self, value: Any, now: float) -> List[Task]:
        """Set the value; return the tasks to requeue (ready at ``now``)."""
        if self.done:
            raise RuntimeError(f"future {self.name!r} resolved twice")
        self.done = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for t in waiters:
            t.ready_at = max(t.ready_at, now)
            t.send_value = value
            t.state = TaskState.READY
        for cb in self._callbacks:
            cb(self, now)
        self._callbacks = []
        return waiters
