"""Per-worker task queues and hierarchical work stealing.

Each worker owns a local double-ended queue modelled after the lock-free
queues of section 4.4: the owner pushes/pops at the tail (LIFO, hot in
cache), thieves steal from the head (FIFO, coldest).  Steal-victim order
is a strategy decision; CHARM steals chiplet-first, then same socket, then
anywhere — preserving cache locality (section 4.4).
"""

from collections import deque
from typing import Iterable, List, Optional

from repro.hw.topology import Topology
from repro.runtime.task import Task


class LocalQueue:
    """One worker's task deque."""

    __slots__ = ("pushes", "pops", "steals_suffered", "_dq")

    def __init__(self) -> None:
        self._dq: "deque[Task]" = deque()
        self.pushes = 0
        self.pops = 0
        self.steals_suffered = 0

    def __len__(self) -> int:
        return len(self._dq)

    def push(self, task: Task) -> None:
        self._dq.append(task)
        self.pushes += 1

    def pop_local(self) -> Optional[Task]:
        """Owner-side pop: oldest first (program order for pinned chains)."""
        if self._dq:
            self.pops += 1
            return self._dq.popleft()
        return None

    def steal(self, allow_pinned: bool = False) -> Optional[Task]:
        """Thief-side pop from the tail; pinned tasks are not stealable."""
        if not self._dq:
            return None
        if allow_pinned or not self._dq[-1].pinned:
            self.steals_suffered += 1
            return self._dq.pop()
        # Pinned task at the tail: scan for the last stealable task.
        for i in range(len(self._dq) - 1, -1, -1):
            if not self._dq[i].pinned:
                t = self._dq[i]
                del self._dq[i]
                self.steals_suffered += 1
                return t
        return None

    def remove(self, task: Task) -> bool:
        try:
            self._dq.remove(task)
            return True
        except ValueError:
            return False


def hierarchical_steal_order(
    topo: Topology, my_core: int, worker_cores: List[int], rng
) -> List[int]:
    """Chiplet-first steal victim order (CHARM, section 4.4).

    Returns worker indices ordered: same chiplet, then same socket, then
    remote socket; random within each tier for load spreading.
    """
    my_chiplet = topo.chiplet_of_core(my_core)
    my_socket = topo.socket_of_core(my_core)
    tiers: List[List[int]] = [[], [], []]
    for wid, core in enumerate(worker_cores):
        if core == my_core:
            continue
        if topo.chiplet_of_core(core) == my_chiplet:
            tiers[0].append(wid)
        elif topo.socket_of_core(core) == my_socket:
            tiers[1].append(wid)
        else:
            tiers[2].append(wid)
    order: List[int] = []
    for tier in tiers:
        rng.shuffle(tier)
        order.extend(tier)
    return order


def flat_steal_order(my_worker: int, n_workers: int, rng) -> List[int]:
    """Topology-oblivious steal order (NUMA-aware baselines)."""
    order = [w for w in range(n_workers) if w != my_worker]
    rng.shuffle(order)
    return order
