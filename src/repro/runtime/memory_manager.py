"""NUMA-aware memory management helpers (task & memory manager, Fig. 6).

Wraps region allocation with the placement policies the paper's memory
manager supports: local-to-worker binding (the ``MPOL_BIND`` of Alg. 2),
explicit node binding, page interleaving, and SHOAL-style read-only
replication.  Also provides partitioning helpers used by workloads to
split arrays into per-worker segments.
"""

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.hw.memory import MemPolicy, Region

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.worker import Worker


class MemoryManager:
    """Allocation front-end bound to a runtime."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def alloc_local(self, size_bytes: int, worker: "Worker", name: str = "") -> Region:
        """Bind to the worker's current NUMA node (Alg. 2 MPOL_BIND)."""
        return self.runtime.machine.alloc_region(
            size_bytes, node=worker.mem_node, policy=MemPolicy.BIND, name=name
        )

    def alloc_bind(self, size_bytes: int, node: int, name: str = "") -> Region:
        return self.runtime.machine.alloc_region(
            size_bytes, node=node, policy=MemPolicy.BIND, name=name
        )

    def alloc_interleave(self, size_bytes: int, name: str = "") -> Region:
        return self.runtime.machine.alloc_region(
            size_bytes, node=0, policy=MemPolicy.INTERLEAVE, name=name
        )

    def alloc_replicated(self, size_bytes: int, name: str = "") -> Region:
        """Read-only replica on every node (SHOAL's array abstraction)."""
        return self.runtime.machine.alloc_region(
            size_bytes, node=0, policy=MemPolicy.REPLICATED, name=name
        )


def partition_blocks(n_blocks: int, n_parts: int) -> List[Tuple[int, int]]:
    """Split ``n_blocks`` into ``n_parts`` contiguous [start, end) ranges.

    Earlier parts get the remainder, so sizes differ by at most one — the
    segment arithmetic of the Fig. 5 microbenchmark.
    """
    if n_parts < 1:
        raise ValueError("need at least one partition")
    base, rem = divmod(n_blocks, n_parts)
    ranges = []
    start = 0
    for i in range(n_parts):
        size = base + (1 if i < rem else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def chunk_ranges(start: int, end: int, chunk: int) -> List[Tuple[int, int]]:
    """Split [start, end) into chunks of at most ``chunk`` items."""
    if chunk < 1:
        raise ValueError("chunk must be positive")
    return [(s, min(s + chunk, end)) for s in range(start, end, chunk)]
