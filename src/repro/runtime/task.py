"""Lightweight tasks: user-level-thread state around a Python generator.

Mirrors the paper's concurrency model (section 4.4): each task has its own
execution state ("stack"), can suspend and resume at defined points, and
can migrate between workers.  The *cost* of a context switch is charged by
the worker according to the active strategy (user-space switch for CHARM,
OS thread creation + switch for the ``std::async`` baseline).
"""

import itertools
from enum import Enum
from typing import Any, Callable, Generator, Optional

from repro.hw.counters import FillCounters


class TaskState(Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"     # waiting on a barrier or future
    DONE = "done"
    FAILED = "failed"


_task_ids = itertools.count(1)


class Task:
    """One unit of work: a generator yielding :mod:`repro.runtime.ops`."""

    __slots__ = (
        "task_id",
        "name",
        "fn",
        "args",
        "gen",
        "state",
        "result",
        "error",
        "owner_worker",
        "pinned",
        "ready_at",
        "send_value",
        "program",
        "program_pc",
        "switches",
        "fills",
        "spawned_at",
        "finished_at",
        "started",
    )

    def __init__(
        self,
        fn: Callable[..., Generator],
        args: tuple = (),
        name: str = "",
        pinned: bool = False,
    ):
        self.task_id = next(_task_ids)
        self.name = name or getattr(fn, "__name__", "task")
        self.fn = fn
        self.args = args
        self.gen: Optional[Generator] = None
        self.state = TaskState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.owner_worker: Optional[int] = None
        self.pinned = pinned
        self.ready_at = 0.0
        self.send_value: Any = None
        # In-flight compiled program (repro.runtime.program): the program
        # and resume row travel with the task so steals/migrations resume
        # the walk on whichever worker dispatches it next.
        self.program: Any = None
        self.program_pc = 0
        self.switches = 0
        self.fills = FillCounters()
        self.spawned_at = 0.0
        self.finished_at = 0.0
        self.started = False

    def ensure_started(self) -> Generator:
        """Instantiate the generator lazily, on first dispatch."""
        if self.gen is None:
            self.gen = self.fn(*self.args)
            if not hasattr(self.gen, "send"):
                raise TypeError(
                    f"task function {self.fn!r} must be a generator function "
                    "yielding runtime ops"
                )
            self.started = True
        return self.gen

    def finish(self, result: Any, now: float) -> None:
        self.state = TaskState.DONE
        self.result = result
        self.finished_at = now

    def fail(self, error: BaseException, now: float) -> None:
        self.state = TaskState.FAILED
        self.error = error
        self.finished_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.name!r} {self.state.value}>"
