"""Compatibility shim: profiling moved to :mod:`repro.obs.profiler` (PR 5).

Everything importable from here before the move still is; new code
should import from ``repro.obs`` directly.
"""

from repro.obs.profiler import (  # noqa: F401
    ProfileLog,
    WorkerSample,
    concurrency_series,
    fill_breakdown,
    sample_workers,
    utilization,
)

__all__ = [
    "ProfileLog",
    "WorkerSample",
    "concurrency_series",
    "fill_breakdown",
    "sample_workers",
    "utilization",
]
