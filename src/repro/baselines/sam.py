"""SAM: contention- and sharing-aware multicore scheduler (baseline 4).

SAM (Srikanthan et al., USENIX ATC 2016) samples PMU events (IPC,
coherence activity, remote accesses) to decide whether threads should be
*consolidated* (heavy data sharing: put sharers on one socket to cut
coherence traffic) or *separated* (bandwidth contention: spread across
sockets).  It is hyperthread-aware and socket-granular.

Its PMU heuristics were designed for monolithic multi-socket NUMA: a
"socket" is assumed to be one cache domain.  On chiplet CPUs that
assumption breaks — consolidating sharers onto one socket still scatters
them over eight separate L3 slices — which is why SAM trails CHARM on AMD
and does particularly poorly on Intel Sapphire Rapids (paper section 5.3:
"SAM's profiling events are ill-suited for chiplet-based architectures").

The model: socket-granular consolidate/separate decisions driven by the
simulated fill counters (coherence proxy: remote-chiplet fills; bandwidth
proxy: DRAM fills), sequential core choice within the target socket, no
chiplet-level placement.
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class SamStrategy(SchedulingStrategy):
    """Socket-level consolidate/separate driven by PMU-style counters."""

    name = "sam"
    hierarchical_stealing = False

    def __init__(
        self,
        interval_ns: float = 400_000.0,
        sharing_threshold: float = 200.0,
        bandwidth_threshold: float = 400.0,
    ):
        self.interval_ns = interval_ns
        self.sharing_threshold = sharing_threshold
        self.bandwidth_threshold = bandwidth_threshold

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """Like the Linux load balancer SAM sits on: spread over sockets."""
        topo = machine.topo
        socket = worker_id % topo.sockets
        index_in_socket = worker_id // topo.sockets
        if index_in_socket >= topo.cores_per_socket:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return socket * topo.cores_per_socket + index_in_socket

    def place_task(self, spawner, runtime) -> int:
        return runtime.rr_next_worker()

    def on_tick(self, worker, runtime) -> None:
        """Consolidate on cross-socket coherence; separate on bandwidth."""
        now = worker.clock
        if now - worker.policy_time < self.interval_ns:
            return
        elapsed = now - worker.policy_time
        worker.policy_time = now
        scale = self.interval_ns / elapsed
        coherence = worker.remote_fills_since_mark() - worker.dram_fills_since_mark()
        dram = worker.dram_fills_since_mark()
        worker.mark_fill_counters()
        topo = runtime.machine.topo
        my_socket = topo.socket_of_core(worker.core)
        if coherence * scale >= self.sharing_threshold:
            # Sharing-dominated: consolidate onto the socket with the most
            # workers (SAM groups sharers; socket = its cache domain unit).
            counts = [0] * topo.sockets
            for w in runtime.workers:
                counts[topo.socket_of_core(w.core)] += 1
            target = max(range(topo.sockets), key=lambda s: counts[s])
            if target != my_socket:
                self._move_to_socket(worker, runtime, target)
        elif dram * scale >= self.bandwidth_threshold:
            # Bandwidth-bound: separate onto the emptiest socket.
            counts = [0] * topo.sockets
            for w in runtime.workers:
                counts[topo.socket_of_core(w.core)] += 1
            target = min(range(topo.sockets), key=lambda s: counts[s])
            if target != my_socket:
                self._move_to_socket(worker, runtime, target)

    @staticmethod
    def _move_to_socket(worker, runtime, socket: int) -> None:
        for core in runtime.machine.topo.cores_of_socket(socket):
            if core not in runtime.core_ledger:
                runtime.request_migration(worker, core)
                return
