"""Baseline systems from the paper's evaluation, on the same substrate.

Every baseline is a :class:`~repro.runtime.policy.SchedulingStrategy`
implementation over the *same* machine model and task model as CHARM, so
measured differences come only from scheduling/placement policy — exactly
the comparison the paper makes:

- :class:`RingStrategy` — RING [Meng & Tan, ICPADS'17]: NUMA-aware
  message-batching runtime; round-robin NUMA placement, chiplet-oblivious.
- :class:`ShoalStrategy` — SHOAL [Kaestle et al., ATC'15]: smart array
  allocation/replication, sequential task->core assignment.
- :class:`AsymSchedStrategy` — AsymSched [Lepers et al.]: bandwidth-centric
  NUMA placement and thread-group migration.
- :class:`SamStrategy` — SAM [Srikanthan et al., ATC'16]: coherence/
  contention-driven placement, hyperthread-aware.
- :class:`OsAsyncStrategy` — ``std::async``-style OS threading: thread per
  task, blocking synchronisation, expensive switches (Fig. 11/12 baseline).
- LocalCache / DistributedCache static policies re-exported from
  :mod:`repro.runtime.policy` (Fig. 5 / Fig. 14).
"""

from repro.baselines.ring import RingStrategy
from repro.baselines.shoal import ShoalStrategy
from repro.baselines.asymsched import AsymSchedStrategy
from repro.baselines.sam import SamStrategy
from repro.baselines.oslike import OsAsyncStrategy
from repro.runtime.policy import (
    StaticSpreadStrategy,
    distributed_cache_strategy,
    local_cache_strategy,
)

__all__ = [
    "RingStrategy",
    "ShoalStrategy",
    "AsymSchedStrategy",
    "SamStrategy",
    "OsAsyncStrategy",
    "StaticSpreadStrategy",
    "local_cache_strategy",
    "distributed_cache_strategy",
]
