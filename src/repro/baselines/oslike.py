"""``std::async``-style OS threading (the DW+CHARM+std::async baseline).

Maps each task to an OS thread, as GCC's ``std::async(launch::async)``
does.  Three modelled costs reproduce the behaviour measured in
Fig. 11/12:

1. **thread creation** per task (~15 us of kernel work amortised into
   virtual time) — DimmWitted creates 641 threads on 32 cores;
2. **kernel context switches** (~3.5 us) instead of CHARM's ~60 ns
   user-space coroutine switch;
3. **blocking synchronisation** (``blocking_sync = True``): a thread that
   waits on a barrier/future blocks *its core* — the worker parks instead
   of running another task — which is why the observed thread concurrency
   fluctuates around half the core count (Fig. 12a) instead of staying
   pinned at it (Fig. 12b).

Placement is the OS load balancer's: round-robin over all cores with no
topology awareness, and migrations happen freely on wakeup (modelled by
flat random stealing).
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class OsAsyncStrategy(SchedulingStrategy):
    """Thread-per-task with OS-level costs and blocking waits."""

    name = "os-async"
    hierarchical_stealing = False
    blocking_sync = True
    switch_cost_ns = 3_500.0        # kernel context switch
    task_create_cost_ns = 5_000.0   # pthread_create + stack setup (amortised)
    steal_probe_ns = 350.0          # runqueue peek via the kernel

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """CFS-style spread: alternate sockets, sequential cores within."""
        topo = machine.topo
        socket = worker_id % topo.sockets
        index_in_socket = worker_id // topo.sockets
        if index_in_socket >= topo.cores_per_socket:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return socket * topo.cores_per_socket + index_in_socket

    def place_task(self, spawner, runtime) -> int:
        """The OS wakes threads on whichever CPU is least loaded."""
        workers = runtime.workers
        return min(range(len(workers)), key=lambda w: len(workers[w].queue))

    def shared_policy(self, read_only: bool = False, runtime=None):
        """Plain mmap + first touch: everything lands on node 0."""
        from repro.hw.memory import MemPolicy

        return MemPolicy.BIND
