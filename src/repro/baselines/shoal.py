"""SHOAL: smart NUMA array allocation with sequential core assignment.

SHOAL (Kaestle et al., USENIX ATC 2015) optimises *memory* — it picks
array placements (replication, distribution, huge pages) from access
patterns — but its thread placement is naive: task ``i`` runs on core
``i`` (paper section 5.4: "SHOAL assigns tasks sequentially to cores").

On a chiplet machine the sequential assignment packs small worker counts
onto few chiplets: with 16 workers it uses only 2 of 8 CCDs and hence
64 MB of the 256 MB aggregate L3 — the effect Fig. 9 / Tab. 2 measure.

Workloads honouring SHOAL's array abstraction should allocate read-mostly
data with ``MemPolicy.REPLICATED`` (node-local replicas) when running
under this strategy; the :meth:`alloc_node` hook keeps other allocations
on the first socket, as SHOAL's default first-touch does.
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class ShoalStrategy(SchedulingStrategy):
    """Sequential task->core pinning; replication-friendly allocation."""

    name = "shoal"
    hierarchical_stealing = False
    # Huge pages / DMA engines make SHOAL's bulk setup cheap.
    task_create_cost_ns = 40.0

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """Worker ``i`` -> core ``i``: chiplets fill strictly in order."""
        if worker_id >= machine.topo.total_cores:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return worker_id

    def place_task(self, spawner, runtime) -> int:
        """Tasks assigned sequentially, like SHOAL's static work split."""
        return runtime.rr_next_worker()

    def shared_policy(self, read_only: bool = False, runtime=None):
        """SHOAL's array abstraction: replicate read-only arrays per node."""
        from repro.hw.memory import MemPolicy

        return MemPolicy.REPLICATED if read_only else MemPolicy.INTERLEAVE
