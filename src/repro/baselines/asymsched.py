"""AsymSched: bandwidth-centric NUMA scheduler (baseline 3).

AsymSched optimises thread and memory placement for machines with
*asymmetric interconnects*: it groups communicating threads, enumerates
placements of thread groups onto nodes, and picks the one maximising
usable interconnect bandwidth, migrating groups when the balance drifts.

On a chiplet machine with a symmetric on-package fabric its placement
granularity — whole NUMA nodes — is too coarse (paper section 6:
"AsymSched offers limited benefit on chiplet-based designs with uniform
interconnects").  The model captures exactly that: workers spread evenly
across NUMA nodes for bandwidth, a periodic tick re-balances workers from
the most DRAM-loaded socket to the least, but within a socket cores are
taken sequentially with no chiplet awareness, and task placement ignores
L3 partitioning.
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class AsymSchedStrategy(SchedulingStrategy):
    """Even node spread + DRAM-load-driven node rebalancing."""

    name = "asymsched"
    hierarchical_stealing = False

    def __init__(self, rebalance_interval_ns: float = 400_000.0, imbalance_ratio: float = 2.0):
        self.rebalance_interval_ns = rebalance_interval_ns
        self.imbalance_ratio = imbalance_ratio

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """Split workers evenly over sockets; sequential cores within."""
        topo = machine.topo
        per_socket = -(-n_workers // topo.sockets)  # ceil
        socket = worker_id // per_socket
        index_in_socket = worker_id % per_socket
        if socket >= topo.sockets or index_in_socket >= topo.cores_per_socket:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return socket * topo.cores_per_socket + index_in_socket

    def place_task(self, spawner, runtime) -> int:
        return runtime.rr_next_worker()

    def on_tick(self, worker, runtime) -> None:
        """Bandwidth-centric rebalancing: move a worker off the hot socket.

        AsymSched's placement enumeration reduces, in steady state, to
        keeping per-node bandwidth demand even; the tick checks the
        worker's own DRAM fill rate against the machine-wide average and
        migrates it to the least-loaded socket's next free core when its
        node is overloaded.  Node-granular: the chosen core within the
        target socket is just the lowest free one.
        """
        now = worker.clock
        if now - worker.policy_time < self.rebalance_interval_ns:
            return
        worker.policy_time = now
        topo = runtime.machine.topo
        # Per-socket DRAM fill totals since the run started.
        load = [0] * topo.sockets
        for w in runtime.workers:
            load[topo.socket_of_core(w.core)] += w.fills.dram_fills()
        my_socket = topo.socket_of_core(worker.core)
        coolest = min(range(topo.sockets), key=lambda s: load[s])
        if coolest == my_socket:
            worker.mark_fill_counters()
            return
        if load[coolest] == 0 or load[my_socket] / max(load[coolest], 1) >= self.imbalance_ratio:
            for core in topo.cores_of_socket(coolest):
                if core not in runtime.core_ledger:
                    runtime.request_migration(worker, core)
                    break
        worker.mark_fill_counters()
