"""Vanilla pthread-style execution: no architecture-aware runtime support.

The "no runtime" comparison point of Fig. 9 (and the stock-DuckDB thread
mapping of Fig. 13): threads are placed the way a default OS scheduler
spreads them (alternating sockets, sequential cores), memory is
first-touch on node 0, there is no adaptation, no topology-aware
stealing, and no clever shared-data placement.  Unlike
:class:`~repro.baselines.oslike.OsAsyncStrategy` this models a *static*
parallel program (one long-lived thread per core), so per-task costs are
ordinary and synchronisation does not block the world — it is a fair,
efficient, but placement-oblivious baseline.
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class VanillaStrategy(SchedulingStrategy):
    """Placement-oblivious static-parallel execution."""

    name = "vanilla"
    hierarchical_stealing = False

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        topo = machine.topo
        socket = worker_id % topo.sockets
        index_in_socket = worker_id // topo.sockets
        if index_in_socket >= topo.cores_per_socket:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return socket * topo.cores_per_socket + index_in_socket

    def alloc_node(self, worker, machine: Machine) -> int:
        """First touch by the main thread: everything lands on node 0."""
        return 0

    def shared_policy(self, read_only: bool = False, runtime=None):
        from repro.hw.memory import MemPolicy

        return MemPolicy.BIND
