"""RING: NUMA-aware message-batching runtime (baseline 1).

RING (Meng & Tan, ICPADS 2017) is the runtime CHARM inherits its API and
task/RPC model from.  It is NUMA-aware — workers are distributed
round-robin across NUMA nodes and memory is allocated node-locally — but
*chiplet-oblivious*: within a node, workers take sequential cores with no
notion of L3 partitioning, and tasks are placed round-robin across all
workers with no chiplet-locality preference.

Consequences on a chiplet machine (paper sections 5.2, Tab. 1): tasks
sharing data land on workers in *different sockets*, so fills are served
from remote-NUMA chiplet caches; and no spread/compact adaptation means
the L3 footprint never matches the working set.

Message batching is modelled as a reduced effective cost for moving tasks
between nodes (RING batches RPCs to amortise inter-node latency), which is
its genuine strength versus naive runtimes.
"""

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy


class RingStrategy(SchedulingStrategy):
    """Round-robin NUMA placement, node-local allocation, flat stealing."""

    name = "ring"
    hierarchical_stealing = False
    # Message batching amortises task-movement latency.
    steal_probe_ns = 60.0

    def initial_core(self, worker_id: int, n_workers: int, machine: Machine) -> int:
        """Worker ``i`` -> socket ``i % sockets``, next sequential core there."""
        topo = machine.topo
        socket = worker_id % topo.sockets
        index_in_socket = worker_id // topo.sockets
        if index_in_socket >= topo.cores_per_socket:
            raise ValueError(f"{n_workers} workers exceed machine capacity")
        return socket * topo.cores_per_socket + index_in_socket

    def place_task(self, spawner, runtime) -> int:
        """Round-robin task distribution (no chiplet locality)."""
        return runtime.rr_next_worker()
