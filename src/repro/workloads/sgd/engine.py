"""SGD for logistic regression on a DimmWitted-style engine.

The paper (section 5.5) runs SGD over a 10,000 x 8,192 dense matrix on
DimmWitted [Zhang & Ré] and compares its native scheduling schemes with
the CHARM integration:

- ``per-core``    — one model replica per worker, placement-oblivious;
- ``numa-node``   — one replica per NUMA node, workers NUMA-spread
                    (DimmWitted's best native scheme);
- ``per-machine`` — a single shared model (maximum coherence traffic);
- ``charm``       — DW+CHARM: chiplet-aware placement, one replica per
                    *chiplet* (the model stays in the local L3 slice),
                    coroutine tasks;
- ``charm-async`` — DW+CHARM+std::async: same sharding, but thread-per-
                    task OS scheduling with blocking waits (Fig. 11/12's
                    degraded variant).

Two kernels are measured, as in Fig. 11: ``loss`` (read-only model) and
``gradient`` (model updates -> replica invalidation traffic).  Throughput
is the rate the kernel moves application data (GB/s), the paper's metric.
The SGD math is real: replicas are numpy vectors, updates are applied in
deterministic simulation order, and the single-worker run is bit-equal to
the sequential reference.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.oslike import OsAsyncStrategy
from repro.baselines.ring import RingStrategy
from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import Machine
from repro.hw.memory import MemPolicy
from repro.runtime.program import OpProgram
from repro.runtime.policy import CharmStrategy, SchedulingStrategy
from repro.runtime.runtime import Runtime, RunReport
from repro.sim.rng import stream_np_rng

#: SIMD dot-product/AXPY cost per matrix element, ns
FLOP_NS_PER_ELEM = 0.08
#: streaming bandwidth for sample rows, bytes/ns
DATA_SCAN_BW = 25.0
#: model region block size (fine-grained: coherence at near-line granularity)
MODEL_BLOCK_BYTES = 512


@dataclass
class SgdDataset:
    X: np.ndarray  # (n_samples, n_features) float32
    y: np.ndarray  # (n_samples,) float32 in {0, 1}

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def data_bytes(self) -> int:
        return self.X.nbytes


def make_dataset(n_samples: int = 4096, n_features: int = 1024, seed: int = 11) -> SgdDataset:
    """Synthetic separable-ish logistic data, deterministic."""
    rng = stream_np_rng(seed, "sgd-data")
    X = rng.normal(0, 1, size=(n_samples, n_features)).astype(np.float32)
    w_true = rng.normal(0, 1, size=n_features).astype(np.float32)
    logits = X @ w_true
    y = (logits + rng.normal(0, 0.5, size=n_samples) > 0).astype(np.float32)
    return SgdDataset(X, y)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def _chunk_gradient(X: np.ndarray, y: np.ndarray, w: np.ndarray, lr: float) -> np.ndarray:
    """One mini-batch SGD step; returns the updated weights."""
    p = _sigmoid(X @ w)
    grad = X.T @ (p - y) / X.shape[0]
    return w - lr * grad


def _chunk_loss(X: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
    p = _sigmoid(X @ w)
    eps = 1e-7
    return float(-(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).sum())


def sgd_reference(dataset: SgdDataset, epochs: int, lr: float, chunk_rows: int) -> np.ndarray:
    """Sequential oracle: same chunk order as a single-worker run."""
    w = np.zeros(dataset.n_features, dtype=np.float64)
    for _ in range(epochs):
        for lo in range(0, dataset.n_samples, chunk_rows):
            hi = min(lo + chunk_rows, dataset.n_samples)
            w = _chunk_gradient(dataset.X[lo:hi], dataset.y[lo:hi], w, lr)
    return w


@dataclass
class SgdResult:
    scheme: str
    kernel: str
    n_workers: int
    wall_ns: float
    bytes_processed: int
    model: np.ndarray
    loss: float
    report: RunReport

    @property
    def throughput_gbs(self) -> float:
        """Application data moved through the kernel, GB/s (Fig. 11 metric)."""
        if self.wall_ns <= 0:
            return 0.0
        return self.bytes_processed / self.wall_ns  # bytes/ns == GB/s


class _Scheme:
    def __init__(self, name: str, strategy_fn: Callable[[], SchedulingStrategy],
                 replica_of: str):
        self.name = name
        self.strategy_fn = strategy_fn
        self.replica_of = replica_of  # 'worker' | 'socket' | 'machine' | 'chiplet'


class _DwNativeStrategy(OsAsyncStrategy):
    """DimmWitted's own engine: std::async-style tasks, NUMA-spread workers."""

    name = "dw-native"

    def initial_core(self, worker_id, n_workers, machine):
        # NUMA-aware spread (DimmWitted is NUMA-optimised), chiplet-blind.
        topo = machine.topo
        socket = worker_id % topo.sockets
        index_in_socket = worker_id // topo.sockets
        if index_in_socket >= topo.cores_per_socket:
            raise ValueError("too many workers")
        return socket * topo.cores_per_socket + index_in_socket


SCHEMES: Dict[str, _Scheme] = {
    "per-core": _Scheme("per-core", _DwNativeStrategy, "worker"),
    "numa-node": _Scheme("numa-node", _DwNativeStrategy, "socket"),
    "per-machine": _Scheme("per-machine", _DwNativeStrategy, "machine"),
    "charm": _Scheme("charm", CharmStrategy, "chiplet"),
    "charm-async": _Scheme("charm-async", OsAsyncStrategy, "chiplet"),
}


def run_sgd(
    machine: Machine,
    scheme: str,
    n_workers: int,
    dataset: SgdDataset,
    kernel: str = "gradient",
    epochs: int = 2,
    lr: float = 0.1,
    chunk_rows: int = 64,
    seed: int = 7,
    collect_timeline: bool = False,
    strategy: Optional[SchedulingStrategy] = None,
) -> SgdResult:
    """Run one (scheme, kernel, core-count) cell of Fig. 11."""
    if kernel not in ("gradient", "loss"):
        raise ValueError("kernel must be 'gradient' or 'loss'")
    spec = SCHEMES[scheme]
    strategy = strategy or spec.strategy_fn()
    runtime = Runtime(machine, n_workers, strategy, seed=seed,
                      collect_timeline=collect_timeline)
    topo = machine.topo

    # Replica groups.
    if spec.replica_of == "worker":
        n_replicas = n_workers
        group = lambda wid: wid
    elif spec.replica_of == "socket":
        n_replicas = topo.sockets
        group = lambda wid: topo.socket_of_core(runtime.workers[wid].core)
    elif spec.replica_of == "chiplet":
        n_replicas = topo.total_chiplets
        group = lambda wid: topo.chiplet_of_core(runtime.workers[wid].core)
    else:  # machine
        n_replicas = 1
        group = lambda wid: 0

    model_bytes = dataset.n_features * 8
    # NUMA-aware data sharding: one data region per occupied socket, each
    # holding the rows its socket's workers process (DimmWitted partitions
    # input per node; CHARM's socket-aware manager does the same).
    worker_sockets = [topo.socket_of_core(runtime.workers[w].core) for w in range(n_workers)]
    occupied = sorted(set(worker_sockets))
    rows_per_socket = {sck: 0 for sck in occupied}
    for sck in worker_sockets:
        rows_per_socket[sck] += 1
    model_region = runtime.alloc_shared(
        max(n_replicas * model_bytes, MODEL_BLOCK_BYTES),
        read_only=False, name="sgd-model", block_bytes=MODEL_BLOCK_BYTES,
    )
    blocks_per_replica = max(1, model_bytes // MODEL_BLOCK_BYTES)

    # Partition rows over sockets proportionally to their worker counts,
    # then allocate each partition node-locally.
    total_workers = sum(rows_per_socket.values())
    socket_rows = {}
    data_regions = {}
    row0 = 0
    for i, sck in enumerate(occupied):
        share = dataset.n_samples * rows_per_socket[sck] // total_workers
        row1 = dataset.n_samples if i == len(occupied) - 1 else row0 + share
        socket_rows[sck] = (row0, row1)
        data_regions[sck] = runtime.alloc(
            max((row1 - row0) * dataset.n_features * 4, 4096),
            node=sck, policy=MemPolicy.BIND, name=f"sgd-data-n{sck}",
        )
        row0 = row1

    replicas = [np.zeros(dataset.n_features, dtype=np.float64) for _ in range(n_replicas)]
    state = {"loss": 0.0, "bytes": 0}
    X, y = dataset.X, dataset.y
    row_bytes = dataset.n_features * 4
    data_block = next(iter(data_regions.values())).block_bytes
    scan_ns = data_block / DATA_SCAN_BW
    write_model = kernel == "gradient"

    def chunk_task(wid: int, region, base_row: int, c0: int, c1: int):
        """One DimmWitted work chunk: stream rows, touch replica, compute.

        Two compiled sections around the replica update: the update must
        stay generator-side because gradient chunks in the same replica
        group chain through ``replicas[g]`` — its host execution order is
        the virtual resume order after the model access, which the
        program split preserves exactly.
        """
        b0 = (c0 - base_row) * row_bytes // data_block
        b1 = max(b0 + 1, -(-(c1 - base_row) * row_bytes // data_block))
        program = OpProgram()
        program.run(region, b0, b1 - b0, compute_ns_per_block=scan_ns)
        g = group(wid)
        mb0 = g * blocks_per_replica
        # Gradient updates are atomic RMW chains on the replica:
        # dependent accesses, no MLP overlap (coherence-bound).
        program.run(model_region, mb0, blocks_per_replica,
                    write=write_model, dependent=write_model)
        yield program
        if write_model:
            replicas[g] = _chunk_gradient(X[c0:c1], y[c0:c1], replicas[g], lr)
        else:
            state["loss"] += _chunk_loss(X[c0:c1], y[c0:c1], replicas[g])
        state["bytes"] += (c1 - c0) * row_bytes
        tail = OpProgram()
        tail.compute((c1 - c0) * dataset.n_features * FLOP_NS_PER_ELEM)
        tail.yield_()
        yield tail
        return c1 - c0

    # Build the chunk list: per-socket shards -> per-worker row ranges ->
    # fine-grained chunks (DimmWitted partitions work into hundreds of
    # chunks dispatched as tasks; the spawner pays creation costs).
    plan = []  # (wid, region, base_row, c0, c1)
    rows = chunk_rows if scheme != "charm-async" else max(8, chunk_rows // 2)
    for sck in occupied:
        socket_workers = [w for w in range(n_workers) if worker_sockets[w] == sck]
        r0, r1 = socket_rows[sck]
        wb = np.linspace(r0, r1, len(socket_workers) + 1, dtype=np.int64)
        for i, wid in enumerate(socket_workers):
            lo, hi = int(wb[i]), int(wb[i + 1])
            for c0 in range(lo, hi, rows):
                plan.append((wid, data_regions[sck], r0, c0, min(c0 + rows, hi)))

    def coordinator():
        from repro.runtime.ops import SpawnOp, WaitFuture

        for _ in range(epochs):
            tasks = []
            for wid, region, base_row, c0, c1 in plan:
                t = yield SpawnOp(chunk_task, (wid, region, base_row, c0, c1),
                                  pin_worker=wid, name=f"sgd-{c0}")
                tasks.append(t)
            for t in tasks:
                fut = runtime.completion_future(t)
                if not fut.done:
                    yield WaitFuture(fut)
        return len(plan)

    runtime.spawn(coordinator, name="sgd-coordinator")
    report = runtime.run()

    used = sorted({group(wid) for wid in range(n_workers)})
    model = np.mean([replicas[g] for g in used], axis=0)
    return SgdResult(
        scheme=scheme,
        kernel=kernel,
        n_workers=n_workers,
        wall_ns=report.wall_ns,
        bytes_processed=state["bytes"],
        model=model,
        loss=state["loss"],
        report=report,
    )
