"""DimmWitted-style statistical analytics engine (paper sections 5.1, 5.5).

Stochastic gradient descent for logistic regression over a dense sample
matrix, with the model-replication schemes of DimmWitted (per-core /
per-NUMA-node / per-machine) plus the paper's two integration variants
(DW+CHARM with coroutines, DW+CHARM+std::async with OS threads).
"""

from repro.workloads.sgd.engine import (
    SCHEMES,
    SgdDataset,
    SgdResult,
    make_dataset,
    run_sgd,
    sgd_reference,
)

__all__ = ["SCHEMES", "SgdDataset", "SgdResult", "make_dataset", "run_sgd", "sgd_reference"]
