"""Workloads from the paper's evaluation (section 5.1).

Every workload is expressed as CHARM tasks (generators yielding runtime
ops) so it can run unmodified under CHARM and under every baseline
strategy:

- :mod:`repro.workloads.vector_write` — the Fig. 5 microbenchmark
  (segmented multi-threaded vector write);
- :mod:`repro.workloads.gups` — RandomAccess (GUPS);
- :mod:`repro.workloads.graph` — Kronecker generator + BFS / PageRank /
  Connected Components / SSSP / Graph500;
- :mod:`repro.workloads.sgd` — DimmWitted-style SGD for logistic
  regression (loss + gradient kernels, four scheduling strategies);
- :mod:`repro.workloads.olap` — mini column-store with the TPC-H-shaped
  22-query suite;
- :mod:`repro.workloads.oltp` — ERMIA-style MVCC engine with YCSB and
  TPC-C drivers;
- :mod:`repro.workloads.streamcluster` — PARSEC streamcluster k-median.
"""
