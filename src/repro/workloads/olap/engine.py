"""Vectorised morsel-driven query engine over the simulated runtime.

The execution model is DuckDB-like: every operator is split into morsels
(row ranges) executed as tasks; columns are separate regions so a scan is
charged only for the columns it touches; hash joins build a shared hash
region whose working set (often larger than one L3 slice) is the
placement-sensitive part CHARM's adaptive controller optimises (paper
section 5.6).  Results are computed with real numpy operators, so every
query returns actual values that tests verify against direct evaluation.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.ops import AccessBatch, AccessRun, Compute, SpawnOp, WaitFuture, YieldPoint
from repro.runtime.program import OpProgram
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.runtime import Runtime, RunReport
from repro.workloads.olap.data import TpchData

#: predicate / arithmetic cost per row per column, ns
ROW_NS = 0.4
#: hash probe/build cost per row, ns
HASH_ROW_NS = 1.2
#: bytes per hash-table entry (key + payload + bucket overhead)
HASH_ENTRY_BYTES = 16
#: streaming scan bandwidth, bytes/ns
SCAN_BW = 25.0


@dataclass
class QueryResult:
    query: str
    strategy: str
    n_workers: int
    wall_ns: float
    value: float
    report: RunReport

    @property
    def ms(self) -> float:
        return self.wall_ns / 1e6


class QueryEngine:
    """A loaded column store bound to one runtime."""

    def __init__(self, runtime: Runtime, data: TpchData, morsel_rows: int = 4096):
        self.runtime = runtime
        self.data = data
        self.morsel_rows = morsel_rows
        self._col_regions: Dict[Tuple[str, str], object] = {}
        self._hash_seq = 0
        for table, cols in data.tables.items():
            for cname, arr in cols.items():
                self._col_regions[(table, cname)] = runtime.alloc_shared(
                    max(arr.nbytes, 4096), read_only=True, name=f"{table}.{cname}"
                )

    # -- Internals -------------------------------------------------------------

    def _col_run(self, table: str, cname: str, lo: int, hi: int) -> Tuple[object, int, int]:
        """Region plus the run-compressed ``(start, count)`` block range."""
        region = self._col_regions[(table, cname)]
        itemsize = self.data.col(table, cname).itemsize
        bb = region.block_bytes
        b0 = lo * itemsize // bb
        b1 = max(b0 + 1, -(-hi * itemsize // bb))
        return region, b0, b1 - b0

    def _morsels(self, n_rows: int) -> List[Tuple[int, int]]:
        step = self.morsel_rows
        return [(lo, min(lo + step, n_rows)) for lo in range(0, n_rows, step)]

    def _run_parallel(self, make_task: Callable, morsels: Sequence) -> Callable:
        """Generator helper: spawn one task per morsel, await all results."""
        runtime = self.runtime

        def gen():
            tasks = []
            for i, m in enumerate(morsels):
                t = yield SpawnOp(make_task, (i, m), name=f"morsel-{i}")
                tasks.append(t)
            out = []
            for t in tasks:
                fut = runtime.completion_future(t)
                if fut.done:
                    out.append(fut.value)
                else:
                    out.append((yield WaitFuture(fut)))
            return out

        return gen

    # -- Operators (each returns a generator usable inside a query task) -------

    def scan_filter(self, table: str, predicate: Callable[[Dict[str, np.ndarray]], np.ndarray],
                    pred_cols: Sequence[str]):
        """Parallel filter; returns the selected row indices."""
        data = self.data
        n = data.rows(table)
        scan_ns = 4096 / SCAN_BW

        def morsel_task(i, bounds):
            lo, hi = bounds
            program = OpProgram()
            for c in pred_cols:
                region, start, count = self._col_run(table, c, lo, hi)
                program.run(region, start, count, compute_ns_per_block=scan_ns)
            cols = {c: data.col(table, c)[lo:hi] for c in pred_cols}
            mask = predicate(cols)
            program.compute((hi - lo) * len(pred_cols) * ROW_NS)
            program.yield_()
            yield program
            return np.flatnonzero(mask) + lo

        def run():
            parts = yield from self._run_parallel(morsel_task, self._morsels(n))()
            return np.concatenate(parts) if parts else np.empty(0, np.int64)

        return run()

    def gather(self, table: str, column: str, rows: np.ndarray):
        """Parallel random gather of ``column`` at ``rows``."""
        data = self.data
        region = self._col_regions[(table, column)]
        itemsize = data.col(table, column).itemsize

        def morsel_task(i, bounds):
            lo, hi = bounds
            chunk = rows[lo:hi]
            if chunk.size:
                blocks = np.unique(chunk * itemsize // region.block_bytes)
                yield AccessBatch(region, blocks, nbytes=64)
                yield Compute(chunk.size * ROW_NS)
            yield YieldPoint()
            return None

        def run():
            if rows.size:
                yield from self._run_parallel(morsel_task, self._morsels(rows.size))()
            return data.col(table, column)[rows]

        return run()

    def hash_join(self, build_keys: np.ndarray, probe_keys: np.ndarray):
        """Join probe rows against build rows on equal keys.

        Returns ``(probe_idx, build_idx)`` match pairs (first build match
        per probe key occurrence, inner-join multiplicity via sorted
        search).  Charges a hash region sized to the build side — the
        cache-capacity-sensitive structure of Fig. 13's join queries.
        """
        runtime = self.runtime
        self._hash_seq += 1
        hash_region = runtime.alloc_shared(
            max(int(build_keys.size) * HASH_ENTRY_BYTES, 4096),
            read_only=False,
            name=f"hashtable-{self._hash_seq}",
        )
        n_workers = len(runtime.workers)

        order = np.argsort(build_keys, kind="stable")
        sorted_keys = build_keys[order]

        def build_task(i, bounds):
            lo, hi = bounds
            bb = hash_region.block_bytes
            b0 = lo * HASH_ENTRY_BYTES // bb
            b1 = max(b0 + 1, -(-hi * HASH_ENTRY_BYTES // bb))
            yield AccessRun(hash_region, b0, b1 - b0, write=True)
            yield Compute((hi - lo) * HASH_ROW_NS)
            yield YieldPoint()
            return hi - lo

        def probe_task(i, bounds):
            lo, hi = bounds
            keys = probe_keys[lo:hi]
            # Probes hit pseudo-random buckets across the whole table.
            pos = np.searchsorted(sorted_keys, keys)
            buckets = (keys.astype(np.int64) * 2654435761 % max(build_keys.size, 1))
            blocks = np.unique(buckets * HASH_ENTRY_BYTES // hash_region.block_bytes)
            yield AccessBatch(hash_region, blocks, nbytes=64)
            yield Compute((hi - lo) * HASH_ROW_NS)
            yield YieldPoint()
            valid = (pos < sorted_keys.size)
            valid[valid] &= sorted_keys[pos[valid]] == keys[valid]
            return np.flatnonzero(valid) + lo, order[pos[valid]]

        def run():
            yield from self._run_parallel(build_task, self._morsels(build_keys.size))()
            parts = yield from self._run_parallel(probe_task, self._morsels(probe_keys.size))()
            if not parts:
                return np.empty(0, np.int64), np.empty(0, np.int64)
            probe_idx = np.concatenate([p[0] for p in parts])
            build_idx = np.concatenate([p[1] for p in parts])
            return probe_idx, build_idx

        return run()

    def aggregate(self, groups: np.ndarray, values: np.ndarray):
        """Parallel grouped sum; returns (group keys, sums)."""

        def morsel_task(i, bounds):
            lo, hi = bounds
            yield Compute((hi - lo) * ROW_NS * 2)
            yield YieldPoint()
            return None

        def run():
            if groups.size == 0:
                return np.empty(0, np.int64), np.empty(0)
            yield from self._run_parallel(morsel_task, self._morsels(groups.size))()
            uniq, inv = np.unique(groups, return_inverse=True)
            sums = np.bincount(inv, weights=values, minlength=uniq.size)
            return uniq, sums

        return run()


def execute_query(
    machine: Machine,
    strategy: SchedulingStrategy,
    n_workers: int,
    data: TpchData,
    query_fn: Callable[[QueryEngine], Callable],
    name: str = "query",
    seed: int = 7,
    morsel_rows: int = 4096,
) -> QueryResult:
    """Run one query body under one strategy; returns value + timing."""
    runtime = Runtime(machine, n_workers, strategy, seed=seed)
    engine = QueryEngine(runtime, data, morsel_rows=morsel_rows)
    box = {}

    def root():
        value = yield from query_fn(engine)
        box["value"] = value
        return value

    runtime.spawn(root, name=name)
    report = runtime.run()
    return QueryResult(
        query=name,
        strategy=strategy.name,
        n_workers=n_workers,
        wall_ns=report.wall_ns,
        value=float(box.get("value", 0.0) or 0.0),
        report=report,
    )
