"""Mini analytical column store with a TPC-H-shaped 22-query suite.

Stands in for DuckDB in the paper's Fig. 13 experiment: a vectorised,
morsel-driven columnar engine whose thread mapping is pluggable, so the
same queries run under stock (placement-oblivious) scheduling and under
CHARM's adaptive controller.
"""

from repro.workloads.olap.data import TpchData, generate
from repro.workloads.olap.engine import QueryEngine, QueryResult
from repro.workloads.olap.queries import QUERIES, run_query

__all__ = ["TpchData", "generate", "QueryEngine", "QueryResult", "QUERIES", "run_query"]
