"""The 22-query TPC-H-shaped workload.

Each query is a generator body over :class:`QueryEngine` preserving the
real query's *shape* — which tables it scans, which joins it performs,
roughly which selectivities apply — with simplified predicates.  Join
queries build hash tables over orders/customer/part (the aggregate-cache
consumers of Fig. 13); scan queries are filter+aggregate morsel sweeps.

Every query returns a scalar (sum/count) that the tests verify against a
direct numpy evaluation of the same simplified semantics.
"""

from typing import Callable, Dict, Tuple

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy
from repro.workloads.olap.data import TpchData
from repro.workloads.olap.engine import QueryEngine, QueryResult, execute_query


def q1(e: QueryEngine):
    """Pricing summary: big scan + group-by (scan-heavy)."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: c["shipdate"] <= 2200, ["shipdate"])
    price = yield from e.gather("lineitem", "extendedprice", rows)
    disc = yield from e.gather("lineitem", "discount", rows)
    rf = yield from e.gather("lineitem", "returnflag", rows)
    ls = yield from e.gather("lineitem", "linestatus", rows)
    _, sums = yield from e.aggregate(rf * 2 + ls, price * (1.0 - disc))
    return float(sums.sum())


def q2(e: QueryEngine):
    """Minimum-cost supplier: part/partsupp join."""
    parts = yield from e.scan_filter("part", lambda c: c["size"] == 15, ["size"])
    ps_part = e.data.col("partsupp", "partkey")
    pi, bi = yield from e.hash_join(e.data.col("part", "partkey")[parts], ps_part)
    cost = yield from e.gather("partsupp", "supplycost", pi)
    return float(cost.sum())


def q3(e: QueryEngine):
    """Shipping priority: customer-orders-lineitem join chain."""
    cust = yield from e.scan_filter("customer", lambda c: c["mktsegment"] == 1, ["mktsegment"])
    o_cust = e.data.col("orders", "custkey")
    oi, _ = yield from e.hash_join(e.data.col("customer", "custkey")[cust], o_cust)
    odate = yield from e.gather("orders", "orderdate", oi)
    oi = oi[odate < 1500]
    li_ord = e.data.col("lineitem", "orderkey")
    li, _ = yield from e.hash_join(e.data.col("orders", "orderkey")[oi], li_ord)
    sdate = yield from e.gather("lineitem", "shipdate", li)
    li = li[sdate > 1500]
    price = yield from e.gather("lineitem", "extendedprice", li)
    disc = yield from e.gather("lineitem", "discount", li)
    return float((price * (1 - disc)).sum())


def q4(e: QueryEngine):
    """Order priority check: semi-join lineitem into orders."""
    late = yield from e.scan_filter(
        "lineitem", lambda c: c["commitdate"] < c["receiptdate"], ["commitdate", "receiptdate"])
    lkeys = yield from e.gather("lineitem", "orderkey", late)
    oi, _ = yield from e.hash_join(np.unique(lkeys), e.data.col("orders", "orderkey"))
    odate = yield from e.gather("orders", "orderdate", oi)
    return float((odate < 1200).sum())


def q5(e: QueryEngine):
    """Local supplier volume: 4-way join chain."""
    ords = yield from e.scan_filter("orders", lambda c: c["orderdate"] < 800, ["orderdate"])
    li, bi = yield from e.hash_join(
        e.data.col("orders", "orderkey")[ords], e.data.col("lineitem", "orderkey"))
    supp = yield from e.gather("lineitem", "suppkey", li)
    nat = yield from e.gather("supplier", "nationkey", supp)
    price = yield from e.gather("lineitem", "extendedprice", li)
    disc = yield from e.gather("lineitem", "discount", li)
    keep = nat < 5
    return float((price[keep] * (1 - disc[keep])).sum())


def q6(e: QueryEngine):
    """Forecast revenue change: pure scan + filter (scan-heavy)."""
    rows = yield from e.scan_filter(
        "lineitem",
        lambda c: (c["shipdate"] >= 365) & (c["shipdate"] < 730)
        & (c["discount"] >= 0.05) & (c["discount"] <= 0.07) & (c["quantity"] < 24),
        ["shipdate", "discount", "quantity"],
    )
    price = yield from e.gather("lineitem", "extendedprice", rows)
    disc = yield from e.gather("lineitem", "discount", rows)
    return float((price * disc).sum())


def q7(e: QueryEngine):
    """Volume shipping: lineitem-supplier + orders-customer nation pairs."""
    li, _ = yield from e.hash_join(
        e.data.col("supplier", "suppkey"), e.data.col("lineitem", "suppkey"))
    snat = yield from e.gather("lineitem", "suppkey", li)
    nat = yield from e.gather("supplier", "nationkey", snat)
    price = yield from e.gather("lineitem", "extendedprice", li)
    keep = (nat == 1) | (nat == 2)
    return float(price[keep].sum())


def q8(e: QueryEngine):
    """Market share: part-lineitem-orders joins, share ratio."""
    parts = yield from e.scan_filter("part", lambda c: c["type"] == 10, ["type"])
    li, _ = yield from e.hash_join(
        e.data.col("part", "partkey")[parts], e.data.col("lineitem", "partkey"))
    price = yield from e.gather("lineitem", "extendedprice", li)
    okeys = yield from e.gather("lineitem", "orderkey", li)
    odate = yield from e.gather("orders", "orderdate", okeys)
    num = price[odate < 1250].sum()
    den = price.sum()
    return float(num / den) if den else 0.0


def q9(e: QueryEngine):
    """Product profit: part-lineitem-partsupp joins (join-heavy)."""
    parts = yield from e.scan_filter("part", lambda c: c["brand"] < 12, ["brand"])
    li, _ = yield from e.hash_join(
        e.data.col("part", "partkey")[parts], e.data.col("lineitem", "partkey"))
    price = yield from e.gather("lineitem", "extendedprice", li)
    disc = yield from e.gather("lineitem", "discount", li)
    qty = yield from e.gather("lineitem", "quantity", li)
    return float((price * (1 - disc) - qty * 10.0).sum())


def q10(e: QueryEngine):
    """Returned item reporting: lineitem(returnflag) join orders/customer."""
    ret = yield from e.scan_filter("lineitem", lambda c: c["returnflag"] == 2, ["returnflag"])
    okeys = yield from e.gather("lineitem", "orderkey", ret)
    ckeys = yield from e.gather("orders", "custkey", okeys)
    price = yield from e.gather("lineitem", "extendedprice", ret)
    disc = yield from e.gather("lineitem", "discount", ret)
    _, sums = yield from e.aggregate(ckeys, price * (1 - disc))
    return float(sums.sum())


def q11(e: QueryEngine):
    """Important stock: partsupp value by supplier nation."""
    cost = yield from e.gather(
        "partsupp", "supplycost", np.arange(e.data.rows("partsupp"), dtype=np.int64))
    qty = yield from e.gather(
        "partsupp", "availqty", np.arange(e.data.rows("partsupp"), dtype=np.int64))
    value = cost * qty
    return float(value[value > np.mean(value)].sum())


def q12(e: QueryEngine):
    """Shipping modes: lineitem filter join orders priorities."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: (c["shipmode"] <= 1) & (c["receiptdate"] > c["commitdate"]),
        ["shipmode", "receiptdate", "commitdate"])
    okeys = yield from e.gather("lineitem", "orderkey", rows)
    prio = yield from e.gather("orders", "orderpriority", okeys)
    return float((prio <= 1).sum())


def q13(e: QueryEngine):
    """Customer order counts: orders grouped by custkey."""
    ckeys = yield from e.gather(
        "orders", "custkey", np.arange(e.data.rows("orders"), dtype=np.int64))
    _, counts = yield from e.aggregate(ckeys, np.ones(ckeys.size))
    return float((counts >= 2).sum())


def q14(e: QueryEngine):
    """Promotion effect: part join lineitem, promo revenue ratio."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: (c["shipdate"] >= 900) & (c["shipdate"] < 930), ["shipdate"])
    pkeys = yield from e.gather("lineitem", "partkey", rows)
    ptype = yield from e.gather("part", "type", pkeys)
    price = yield from e.gather("lineitem", "extendedprice", rows)
    disc = yield from e.gather("lineitem", "discount", rows)
    rev = price * (1 - disc)
    den = rev.sum()
    return float(rev[ptype < 50].sum() / den) if den else 0.0


def q15(e: QueryEngine):
    """Top supplier: revenue per supplier, max."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: (c["shipdate"] >= 600) & (c["shipdate"] < 690), ["shipdate"])
    skeys = yield from e.gather("lineitem", "suppkey", rows)
    price = yield from e.gather("lineitem", "extendedprice", rows)
    disc = yield from e.gather("lineitem", "discount", rows)
    _, sums = yield from e.aggregate(skeys, price * (1 - disc))
    return float(sums.max()) if sums.size else 0.0


def q16(e: QueryEngine):
    """Part/supplier relationship: filtered partsupp counts."""
    parts = yield from e.scan_filter(
        "part", lambda c: (c["brand"] != 5) & (c["size"] < 30), ["brand", "size"])
    pi, _ = yield from e.hash_join(
        e.data.col("part", "partkey")[parts], e.data.col("partsupp", "partkey"))
    skeys = yield from e.gather("partsupp", "suppkey", pi)
    return float(np.unique(skeys).size)


def q17(e: QueryEngine):
    """Small-quantity revenue: part join lineitem, qty below avg."""
    parts = yield from e.scan_filter("part", lambda c: c["container"] == 7, ["container"])
    li, _ = yield from e.hash_join(
        e.data.col("part", "partkey")[parts], e.data.col("lineitem", "partkey"))
    qty = yield from e.gather("lineitem", "quantity", li)
    price = yield from e.gather("lineitem", "extendedprice", li)
    if qty.size == 0:
        return 0.0
    return float(price[qty < 0.2 * qty.mean()].sum() / 7.0)


def q18(e: QueryEngine):
    """Large volume customers: group lineitem by order, join up (group-heavy)."""
    okeys = yield from e.gather(
        "lineitem", "orderkey", np.arange(e.data.rows("lineitem"), dtype=np.int64))
    qty = yield from e.gather(
        "lineitem", "quantity", np.arange(e.data.rows("lineitem"), dtype=np.int64))
    keys, sums = yield from e.aggregate(okeys, qty)
    big = keys[sums > 150]
    oi, _ = yield from e.hash_join(big, e.data.col("orders", "orderkey"))
    total = yield from e.gather("orders", "totalprice", oi)
    return float(total.sum())


def q19(e: QueryEngine):
    """Discounted revenue: part join lineitem with bracketed filters."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: (c["quantity"] < 12) & (c["shipinstruct"] == 1),
        ["quantity", "shipinstruct"])
    pkeys = yield from e.gather("lineitem", "partkey", rows)
    brand = yield from e.gather("part", "brand", pkeys)
    price = yield from e.gather("lineitem", "extendedprice", rows)
    return float(price[brand < 8].sum())


def q20(e: QueryEngine):
    """Potential part promotion: partsupp semi-join lineitem quantities."""
    parts = yield from e.scan_filter("part", lambda c: c["brand"] == 3, ["brand"])
    pi, _ = yield from e.hash_join(
        e.data.col("part", "partkey")[parts], e.data.col("partsupp", "partkey"))
    avail = yield from e.gather("partsupp", "availqty", pi)
    return float((avail > 5000).sum())


def q21(e: QueryEngine):
    """Suppliers who kept orders waiting: multi-filter lineitem join supplier."""
    rows = yield from e.scan_filter(
        "lineitem", lambda c: c["receiptdate"] > c["commitdate"],
        ["receiptdate", "commitdate"])
    skeys = yield from e.gather("lineitem", "suppkey", rows)
    nat = yield from e.gather("supplier", "nationkey", skeys)
    _, counts = yield from e.aggregate(skeys[nat == 4], np.ones(int((nat == 4).sum())))
    return float(counts.sum())


def q22(e: QueryEngine):
    """Global sales opportunity: customer acctbal analysis (scan-light)."""
    bal = yield from e.gather(
        "customer", "acctbal", np.arange(e.data.rows("customer"), dtype=np.int64))
    pos = bal[bal > 0]
    if pos.size == 0:
        return 0.0
    return float(bal[bal > pos.mean()].size)


#: query name -> (body, kind) where kind is 'scan' or 'join' (Fig. 13 classes)
QUERIES: Dict[str, Tuple[Callable, str]] = {
    "q1": (q1, "scan"), "q2": (q2, "join"), "q3": (q3, "join"), "q4": (q4, "join"),
    "q5": (q5, "join"), "q6": (q6, "scan"), "q7": (q7, "join"), "q8": (q8, "join"),
    "q9": (q9, "join"), "q10": (q10, "join"), "q11": (q11, "scan"), "q12": (q12, "join"),
    "q13": (q13, "scan"), "q14": (q14, "join"), "q15": (q15, "scan"), "q16": (q16, "join"),
    "q17": (q17, "join"), "q18": (q18, "scan"), "q19": (q19, "join"), "q20": (q20, "join"),
    "q21": (q21, "join"), "q22": (q22, "scan"),
}


def run_query(
    machine: Machine,
    strategy: SchedulingStrategy,
    n_workers: int,
    data: TpchData,
    query: str,
    seed: int = 7,
) -> QueryResult:
    """Execute one named TPC-H-shaped query (Fig. 13 cell)."""
    fn, _ = QUERIES[query]
    return execute_query(machine, strategy, n_workers, data, fn, name=query, seed=seed)
