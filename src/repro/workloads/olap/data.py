"""TPC-H-shaped synthetic data, scaled for the simulated machine.

Schema follows the TPC-H tables/columns the 22 simplified queries touch.
Sizes scale with ``sf`` the way TPC-H does (lineitem ~6M rows/SF in the
real benchmark; here 1/100 of that so the scaled machine's cache
boundaries fall in the same relative places).
"""

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.sim.rng import stream_np_rng

#: lineitem rows per scale factor (real TPC-H: 6_000_000)
LINEITEM_PER_SF = 60_000


@dataclass
class TpchData:
    """All tables as dicts of numpy columns."""

    sf: float
    tables: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def rows(self, table: str) -> int:
        cols = self.tables[table]
        return len(next(iter(cols.values())))

    def col(self, table: str, column: str) -> np.ndarray:
        return self.tables[table][column]


def generate(sf: float = 1.0, seed: int = 42) -> TpchData:
    """Deterministic TPC-H-shaped dataset at scale factor ``sf``."""
    rng = stream_np_rng(seed, "tpch", str(sf))
    n_li = int(LINEITEM_PER_SF * sf)
    n_ord = max(n_li // 4, 1)
    n_cust = max(n_ord // 10, 1)
    n_part = max(n_li // 30, 1)
    n_supp = max(n_part // 10, 1)
    n_ps = n_part * 4

    data = TpchData(sf=sf)
    t = data.tables

    t["region"] = {"regionkey": np.arange(5, dtype=np.int64)}
    t["nation"] = {
        "nationkey": np.arange(25, dtype=np.int64),
        "regionkey": rng.integers(0, 5, 25),
    }
    t["supplier"] = {
        "suppkey": np.arange(n_supp, dtype=np.int64),
        "nationkey": rng.integers(0, 25, n_supp),
        "acctbal": rng.uniform(-999, 9999, n_supp),
    }
    t["customer"] = {
        "custkey": np.arange(n_cust, dtype=np.int64),
        "nationkey": rng.integers(0, 25, n_cust),
        "mktsegment": rng.integers(0, 5, n_cust),
        "acctbal": rng.uniform(-999, 9999, n_cust),
    }
    t["part"] = {
        "partkey": np.arange(n_part, dtype=np.int64),
        "brand": rng.integers(0, 25, n_part),
        "type": rng.integers(0, 150, n_part),
        "size": rng.integers(1, 51, n_part),
        "container": rng.integers(0, 40, n_part),
    }
    t["partsupp"] = {
        "partkey": rng.integers(0, n_part, n_ps),
        "suppkey": rng.integers(0, n_supp, n_ps),
        "supplycost": rng.uniform(1, 1000, n_ps),
        "availqty": rng.integers(1, 10000, n_ps),
    }
    t["orders"] = {
        "orderkey": np.arange(n_ord, dtype=np.int64),
        "custkey": rng.integers(0, n_cust, n_ord),
        "orderdate": rng.integers(0, 2500, n_ord),  # days since 1992-01-01
        "totalprice": rng.uniform(1000, 500000, n_ord),
        "orderpriority": rng.integers(0, 5, n_ord),
        "orderstatus": rng.integers(0, 3, n_ord),
    }
    t["lineitem"] = {
        "orderkey": rng.integers(0, n_ord, n_li),
        "partkey": rng.integers(0, n_part, n_li),
        "suppkey": rng.integers(0, n_supp, n_li),
        "quantity": rng.integers(1, 51, n_li).astype(np.float64),
        "extendedprice": rng.uniform(900, 105000, n_li),
        "discount": rng.uniform(0.0, 0.1, n_li),
        "tax": rng.uniform(0.0, 0.08, n_li),
        "returnflag": rng.integers(0, 3, n_li),
        "linestatus": rng.integers(0, 2, n_li),
        "shipdate": rng.integers(0, 2500, n_li),
        "commitdate": rng.integers(0, 2500, n_li),
        "receiptdate": rng.integers(0, 2500, n_li),
        "shipmode": rng.integers(0, 7, n_li),
        "shipinstruct": rng.integers(0, 4, n_li),
    }
    return data
