"""OLTP execution on the simulated runtime.

Each worker runs a stream of transactions as one pinned task.  Per
transaction the engine charges:

- record accesses — random 64 B reads/writes against the table region
  (key -> block via a fixed hash), the only chiplet-placement-sensitive
  part;
- commit — a :class:`~repro.runtime.ops.CriticalSection` on the global
  commit/log latch plus a sequential log-buffer write.  This serialised
  pipeline is why OLTP throughput is insensitive to cache placement
  (paper section 5.7 / Fig. 14): the latch and log dominate long before
  L3 locality matters.

Transactions really execute against the MVCC store; aborted transactions
(write-write conflicts) are counted and not retried, matching the paper's
committed-transactions-per-second metric.
"""

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, List

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.ops import Access, AccessBatch, Compute, CriticalSection, SimLock, YieldPoint
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.runtime import Runtime, RunReport
from repro.workloads.oltp.mvcc import MvccStore, Transaction, TxnAborted

#: commit-latch hold time (log reservation + version install), ns
COMMIT_LATCH_NS = 650.0
#: transaction logic cost per record op, ns
OP_LOGIC_NS = 120.0
#: bytes per record access
RECORD_BYTES = 64
#: log bytes per transaction
LOG_BYTES = 192


@dataclass
class OltpResult:
    workload: str
    strategy: str
    n_workers: int
    wall_ns: float
    committed: int
    aborted: int
    store: MvccStore
    report: RunReport

    @property
    def commits_per_second(self) -> float:
        if self.wall_ns <= 0:
            return 0.0
        return self.committed / (self.wall_ns * 1e-9)


def _key_block(key, region) -> int:
    # crc32 over repr, NOT built-in hash(): str hashing is randomised per
    # process (PYTHONHASHSEED), which would make record placement — and
    # therefore fig14 — differ between processes.  Cross-process
    # determinism is required by the sweep engine's result cache.
    h = zlib.crc32(repr(key).encode()) & 0x7FFFFFFF
    return (h * RECORD_BYTES) % region.size_bytes // region.block_bytes


def run_oltp(
    machine: Machine,
    strategy: SchedulingStrategy,
    n_workers: int,
    workload: Callable,
    workload_name: str,
    store: MvccStore,
    table_bytes: int,
    txns_per_worker: int = 200,
    seed: int = 7,
) -> OltpResult:
    """Run ``txns_per_worker`` transactions per worker under ``strategy``.

    ``workload(store, worker_id, txn_index, rng)`` must return a
    generator-driving callable: it executes one transaction against the
    MVCC store and returns the list of (key, is_write) record ops it
    performed (used for traffic charging).
    """
    runtime = Runtime(machine, n_workers, strategy, seed=seed)
    table_region = runtime.alloc_shared(table_bytes, read_only=False, name="oltp-table")
    log_region = runtime.alloc_shared(
        max(n_workers * 64 * 512, 4096), read_only=False, name="oltp-log", block_bytes=512
    )
    commit_latch = SimLock("commit-latch")
    stats = {"committed": 0, "aborted": 0}
    log_block_count = log_region.n_blocks

    def txn_stream(wid: int):
        from repro.sim.rng import stream_rng

        rng = stream_rng(seed, "oltp", wid)
        log_cursor = wid * 7
        for i in range(txns_per_worker):
            txn = Transaction(store)
            try:
                ops = workload(store, txn, wid, i, rng)
            except TxnAborted:
                stats["aborted"] += 1
                yield Compute(OP_LOGIC_NS * 2)
                continue
            # Record traffic: reads first, then written records, each in
            # raw op order with repeats kept — a transaction touching the
            # same record twice really touches memory twice.  The gather
            # kernel services unsorted duplicate-laden batches directly
            # (repeats replay as L3 hits after the first touch).
            read_blocks = np.fromiter(
                (_key_block(k, table_region) for k, w in ops if not w),
                dtype=np.int64)
            write_blocks = np.fromiter(
                (_key_block(k, table_region) for k, w in ops if w),
                dtype=np.int64)
            if read_blocks.size:
                yield AccessBatch(table_region, read_blocks, nbytes=RECORD_BYTES,
                                  dependent=True)
            yield Compute(len(ops) * OP_LOGIC_NS)
            if write_blocks.size:
                yield AccessBatch(table_region, write_blocks, write=True,
                                  nbytes=RECORD_BYTES, dependent=True)
            # Commit pipeline: serialised latch + log append.
            try:
                yield CriticalSection(commit_latch, COMMIT_LATCH_NS)
                txn.commit()
                stats["committed"] += 1
                log_cursor = (log_cursor + 1) % log_block_count
                yield Access(log_region, log_cursor, write=True, nbytes=LOG_BYTES)
            except TxnAborted:
                stats["aborted"] += 1
            if i % 8 == 7:
                yield YieldPoint()
        return txns_per_worker

    for wid in range(n_workers):
        runtime.spawn(txn_stream, wid, pin_worker=wid, name=f"txns-{wid}")
    report = runtime.run()
    return OltpResult(
        workload=workload_name,
        strategy=strategy.name,
        n_workers=n_workers,
        wall_ns=report.wall_ns,
        committed=stats["committed"],
        aborted=stats["aborted"],
        store=store,
        report=report,
    )
