"""YCSB driver: 45% reads / 55% read-modify-writes on one table.

Matches the paper's configuration (section 5.1): a single table of
records, uniform key distribution, single-record transactions.  The
record count scales with the simulated machine instead of the paper's
50 M rows.
"""

from typing import List, Tuple

from repro.workloads.oltp.mvcc import MvccStore, Transaction

READ_FRACTION = 0.45


def load_ycsb(n_records: int) -> MvccStore:
    store = MvccStore()
    for k in range(n_records):
        store.load(("u", k), k)
    return store


def ycsb_workload(store: MvccStore, txn: Transaction, worker_id: int,
                  txn_index: int, rng) -> List[Tuple[object, bool]]:
    """One YCSB transaction; returns the record ops performed."""
    key = ("u", rng.randrange(store_size(store)))
    if rng.random() < READ_FRACTION:
        txn.read(key)
        return [(key, False)]
    value = txn.read(key)
    txn.write(key, (value or 0) + 1)
    return [(key, False), (key, True)]


def store_size(store: MvccStore) -> int:
    # len() is O(1) on the version map; no id()-keyed cache (which could
    # go stale when store objects are cloned or garbage-collected).
    return len(store)
