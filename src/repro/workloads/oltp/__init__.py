"""ERMIA-style memory-optimised OLTP engine (paper section 5.7).

A snapshot-isolation MVCC store with a serialised commit/log pipeline,
driven by YCSB and TPC-C transaction mixes under the static LocalCache /
DistributedCache chiplet policies the paper evaluates.
"""

from repro.workloads.oltp.mvcc import MvccStore, Transaction, TxnAborted
from repro.workloads.oltp.engine import OltpResult, run_oltp
from repro.workloads.oltp.ycsb import ycsb_workload
from repro.workloads.oltp.tpcc import tpcc_workload, TpccTables

__all__ = [
    "MvccStore",
    "Transaction",
    "TxnAborted",
    "OltpResult",
    "run_oltp",
    "ycsb_workload",
    "tpcc_workload",
    "TpccTables",
]
