"""Multi-version concurrency control store (ERMIA-style).

Snapshot isolation with first-committer-wins write-conflict detection:

- every committed version carries the commit timestamp that created it;
- a transaction reads the newest version with ``commit_ts <= begin_ts``;
- at commit, each written key is validated: if any key has a version
  newer than the transaction's begin timestamp, the transaction aborts
  (write-write conflict), else all writes install atomically at a fresh
  commit timestamp.

The store is a plain in-memory structure used *inside* simulation tasks;
the engine charges the corresponding record/log memory traffic separately.
The test suite checks the textbook SI invariants (repeatable reads,
no lost updates, write-write aborts, atomic visibility).
"""

import itertools
from typing import Any, Dict, List, Optional, Tuple


class TxnAborted(Exception):
    """Write-write conflict detected at commit."""


class MvccStore:
    """Versioned key-value store with snapshot reads."""

    def __init__(self) -> None:
        self._versions: Dict[Any, List[Tuple[int, Any]]] = {}
        self._ts = itertools.count(1)
        self.last_commit_ts = 0
        self.commits = 0
        self.aborts = 0

    def load(self, key: Any, value: Any) -> None:
        """Bulk-load an initial version at ts 0 (no concurrency control)."""
        self._versions[key] = [(0, value)]

    def begin_ts(self) -> int:
        return self.last_commit_ts

    def read_at(self, key: Any, ts: int) -> Any:
        """Newest version visible at snapshot ``ts`` (None if absent)."""
        versions = self._versions.get(key)
        if not versions:
            return None
        for commit_ts, value in reversed(versions):
            if commit_ts <= ts:
                return value
        return None

    def newest_ts(self, key: Any) -> int:
        versions = self._versions.get(key)
        return versions[-1][0] if versions else -1

    def commit(self, begin_ts: int, writes: Dict[Any, Any]) -> int:
        """Validate and install ``writes``; returns the commit timestamp.

        Raises :class:`TxnAborted` on a write-write conflict (some written
        key has a version newer than ``begin_ts``).
        """
        for key in writes:
            if self.newest_ts(key) > begin_ts:
                self.aborts += 1
                raise TxnAborted(f"write-write conflict on {key!r}")
        commit_ts = next(self._ts)
        for key, value in writes.items():
            self._versions.setdefault(key, []).append((commit_ts, value))
        self.last_commit_ts = commit_ts
        self.commits += 1
        return commit_ts

    def version_count(self, key: Any) -> int:
        return len(self._versions.get(key, ()))

    def keys(self):
        return self._versions.keys()

    def __len__(self) -> int:
        return len(self._versions)

    def clone(self) -> "MvccStore":
        """Independent copy of the store's version history.

        Version lists are copied; the stored values themselves are
        shared, which is safe because every transaction path copies a
        value before mutating it (``dict(txn.read(k))`` / ``{**row}``)
        and installs a fresh object at commit.  A clone of a
        freshly-loaded store is indistinguishable from re-loading.
        """
        new = MvccStore()
        new._versions = {k: list(v) for k, v in self._versions.items()}
        new._ts = itertools.count(self.last_commit_ts + 1)
        new.last_commit_ts = self.last_commit_ts
        new.commits = self.commits
        new.aborts = self.aborts
        return new


class Transaction:
    """Convenience wrapper: snapshot reads + buffered writes."""

    def __init__(self, store: MvccStore):
        self.store = store
        self.begin = store.begin_ts()
        self.writes: Dict[Any, Any] = {}
        self.reads: List[Any] = []

    def read(self, key: Any) -> Any:
        if key in self.writes:  # read-your-writes
            return self.writes[key]
        self.reads.append(key)
        return self.store.read_at(key, self.begin)

    def write(self, key: Any, value: Any) -> None:
        self.writes[key] = value

    def commit(self) -> int:
        return self.store.commit(self.begin, self.writes)
