"""TPC-C driver: New-Order / Payment / Delivery / Order-Status / Stock-Level.

Implements the paper's configuration (section 5.1): 45% New Order, 43%
Payment, the remainder split across the read-only transactions; uniform
item distribution; home-warehouse access.  Warehouse count scales down
from the paper's 50.  The transactions execute real multi-table logic
against the MVCC store (district order counters, stock quantities,
customer balances), which the tests verify for consistency invariants
(e.g. order ids are dense per district, YTD sums match payments).
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.oltp.mvcc import MvccStore, Transaction

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 30
ITEMS = 1000


@dataclass
class TpccTables:
    store: MvccStore
    n_warehouses: int


def load_tpcc(n_warehouses: int = 5) -> TpccTables:
    store = MvccStore()
    for w in range(n_warehouses):
        store.load(("wh", w), {"ytd": 0.0})
        for d in range(DISTRICTS_PER_WAREHOUSE):
            store.load(("dist", w, d), {"ytd": 0.0, "next_o_id": 0})
            for c in range(CUSTOMERS_PER_DISTRICT):
                store.load(("cust", w, d, c), {"balance": 0.0, "payments": 0})
        for i in range(ITEMS):
            store.load(("stock", w, i), {"qty": 100, "ytd": 0})
    return TpccTables(store, n_warehouses)


def _new_order(tables: TpccTables, txn: Transaction, w: int, rng) -> List[Tuple[object, bool]]:
    d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
    ops: List[Tuple[object, bool]] = []
    dist_key = ("dist", w, d)
    dist = dict(txn.read(dist_key))
    ops.append((dist_key, False))
    o_id = dist["next_o_id"]
    dist["next_o_id"] = o_id + 1
    txn.write(dist_key, dist)
    ops.append((dist_key, True))
    n_items = rng.randrange(5, 16)
    for _ in range(n_items):
        item = rng.randrange(ITEMS)
        stock_key = ("stock", w, item)
        stock = dict(txn.read(stock_key))
        ops.append((stock_key, False))
        qty = rng.randrange(1, 11)
        stock["qty"] = stock["qty"] - qty if stock["qty"] >= qty + 10 else stock["qty"] + 91 - qty
        stock["ytd"] += qty
        txn.write(stock_key, stock)
        ops.append((stock_key, True))
    order_key = ("order", w, d, o_id)
    txn.write(order_key, {"items": n_items})
    ops.append((order_key, True))
    return ops


def _payment(tables: TpccTables, txn: Transaction, w: int, rng) -> List[Tuple[object, bool]]:
    d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
    c = rng.randrange(CUSTOMERS_PER_DISTRICT)
    amount = rng.uniform(1.0, 5000.0)
    ops = []
    for key in (("wh", w), ("dist", w, d)):
        row = dict(txn.read(key))
        ops.append((key, False))
        row["ytd"] += amount
        txn.write(key, row)
        ops.append((key, True))
    cust_key = ("cust", w, d, c)
    cust = dict(txn.read(cust_key))
    ops.append((cust_key, False))
    cust["balance"] -= amount
    cust["payments"] += 1
    txn.write(cust_key, cust)
    ops.append((cust_key, True))
    return ops


def _order_status(tables: TpccTables, txn: Transaction, w: int, rng):
    d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
    c = rng.randrange(CUSTOMERS_PER_DISTRICT)
    key = ("cust", w, d, c)
    txn.read(key)
    return [(key, False)]


def _delivery(tables: TpccTables, txn: Transaction, w: int, rng):
    d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
    key = ("dist", w, d)
    dist = txn.read(key)
    ops = [(key, False)]
    if dist and dist["next_o_id"] > 0:
        o_key = ("order", w, d, rng.randrange(dist["next_o_id"]))
        order = txn.read(o_key)
        ops.append((o_key, False))
        if order is not None:
            txn.write(o_key, {**order, "delivered": True})
            ops.append((o_key, True))
    return ops


def _stock_level(tables: TpccTables, txn: Transaction, w: int, rng):
    ops = []
    for _ in range(10):
        key = ("stock", w, rng.randrange(ITEMS))
        txn.read(key)
        ops.append((key, False))
    return ops


def tpcc_workload(tables: TpccTables):
    """Returns a workload callable bound to the loaded tables.

    Mix (paper section 5.1): 45% New Order, 43% Payment, 4% each of
    Delivery, Order Status, Stock Level; always the home warehouse.
    """

    def run(store: MvccStore, txn: Transaction, worker_id: int, txn_index: int, rng):
        w = worker_id % tables.n_warehouses  # home warehouse
        roll = rng.random()
        if roll < 0.45:
            return _new_order(tables, txn, w, rng)
        if roll < 0.88:
            return _payment(tables, txn, w, rng)
        if roll < 0.92:
            return _delivery(tables, txn, w, rng)
        if roll < 0.96:
            return _order_status(tables, txn, w, rng)
        return _stock_level(tables, txn, w, rng)

    return run
