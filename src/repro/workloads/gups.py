"""RandomAccess (GUPS): random read-modify-write updates to a huge table.

The HPCC RandomAccess kernel as used by the paper (section 5.1):
"evaluates non-contiguous memory accesses in a distributed shared memory
architecture, measured in global updates per second (GUPS)."  Each worker
performs batches of XOR updates to pseudo-random table locations; the
table is far larger than the aggregate L3, so performance is dominated by
where fills are served from and how the interconnect handles the random
traffic.

The updates are *actually applied* to a numpy table (deterministically
from the run seed), so tests can validate the result against a sequential
replay of the same update stream.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.program import OpProgram
from repro.runtime.runtime import Runtime, RunReport
from repro.sim.rng import derive_seed

#: updates issued per yield (one batch)
UPDATES_PER_BATCH = 256
#: bytes moved per update (read + modified write of one word's line)
UPDATE_BYTES = 64
#: ALU work per update, ns
UPDATE_COMPUTE_NS = 3.0


@dataclass
class GupsResult:
    strategy: str
    n_workers: int
    total_updates: int
    wall_ns: float
    table: np.ndarray
    report: RunReport

    @property
    def gups(self) -> float:
        """Giga-updates per second (the paper's Fig. 7 GUPS metric)."""
        if self.wall_ns <= 0:
            return 0.0
        return self.total_updates / self.wall_ns  # updates/ns == GUPS

    @property
    def mups(self) -> float:
        return self.gups * 1000.0


def update_stream(seed: int, worker_id: int, n_updates: int, table_size: int) -> np.ndarray:
    """The deterministic per-worker update-location stream."""
    rng = np.random.default_rng(derive_seed(seed, "gups", worker_id))
    return rng.integers(0, table_size, size=n_updates, dtype=np.int64)


def apply_updates_reference(table_size: int, seed: int, n_workers: int,
                            updates_per_worker: int) -> np.ndarray:
    """Sequential replay oracle: XOR of the index into each slot."""
    table = np.zeros(table_size, dtype=np.int64)
    for wid in range(n_workers):
        idx = update_stream(seed, wid, updates_per_worker, table_size)
        np.bitwise_xor.at(table, idx, idx + 1)
    return table


def _gups_task(region, table: np.ndarray, idx_stream: np.ndarray, word_bytes: int,
               block_bytes: int):
    """One worker's update loop, compiled to one op program.

    The whole update stream is straight-line: batches of writes with
    interleaved compute and cooperative yields, no control transfers — so
    it compiles into a single :class:`OpProgram` handed to the worker in
    one yield.  The XOR side effects apply at build time: XOR commutes, so
    the table is bit-identical to per-batch application regardless of the
    virtual-time interleaving across workers.
    """
    n = idx_stream.size
    program = OpProgram()
    for start in range(0, n, UPDATES_PER_BATCH):
        idx = idx_stream[start : start + UPDATES_PER_BATCH]
        # Raw update order, repeats and all: every XOR touches memory, and
        # the gather kernel services unsorted duplicate-laden batches
        # directly (repeats replay as L3 hits after the first touch).
        blocks = idx * word_bytes // block_bytes
        program.batch(region, blocks, write=True, nbytes=UPDATE_BYTES)
        program.compute(idx.size * UPDATE_COMPUTE_NS)
        program.yield_()
    np.bitwise_xor.at(table, idx_stream, idx_stream + 1)
    yield program
    return n


def run_gups(
    machine: Machine,
    strategy: SchedulingStrategy,
    n_workers: int,
    table_bytes: int,
    updates_per_worker: int = 4096,
    seed: int = 7,
    word_bytes: int = 8,
) -> GupsResult:
    """Run RandomAccess under ``strategy``; updates are really applied."""
    runtime = Runtime(machine, n_workers, strategy, seed=seed)
    region = runtime.alloc_shared(table_bytes, read_only=False, name="gups-table")
    table_size = table_bytes // word_bytes
    table = np.zeros(table_size, dtype=np.int64)
    for wid in range(n_workers):
        stream = update_stream(seed, wid, updates_per_worker, table_size)
        runtime.spawn(
            _gups_task, region, table, stream, word_bytes, region.block_bytes,
            pin_worker=wid, name=f"gups-{wid}",
        )
    report = runtime.run()
    return GupsResult(
        strategy=strategy.name,
        n_workers=n_workers,
        total_updates=n_workers * updates_per_worker,
        wall_ns=report.wall_ns,
        table=table,
        report=report,
    )
