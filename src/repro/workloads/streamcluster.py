"""Streamcluster (PARSEC): streaming k-median clustering kernel.

The paper's Fig. 9 / Tab. 2 workload: points arrive in batches; each batch
is clustered by assigning every point to its nearest open center, with a
serialised critical section guarding cost accumulation and center opening
(the well-known scalability limiter of PARSEC streamcluster).

Execution model on the runtime:

- the point array is a large read-only region (SHOAL replicates it per
  node, CHARM binds it to the occupied socket, vanilla leaves it on
  node 0);
- the open-center array is a small, hot, read-mostly region that every
  distance evaluation touches — the chiplet-placement-sensitive part;
- each chunk task computes real nearest-center assignments (numpy),
  charges streaming point reads + hot center reads + distance compute,
  and enters a :class:`~repro.runtime.ops.CriticalSection` to fold its
  partial cost into the global accumulator.

As core counts grow the fixed per-chunk costs and the serial section
dominate the shrinking per-chunk work — the fragmentation collapse the
paper observes beyond ~40 cores.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.ops import SimLock, YieldPoint
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.program import OpProgram
from repro.runtime.runtime import Runtime, RunReport
from repro.sim.rng import stream_np_rng

#: distance evaluation cost per point-dimension pair, ns
DIST_NS_PER_ELEM = 0.04
#: critical section per chunk (cost fold + potential center open), ns
CRITICAL_NS = 400.0
#: streaming read bandwidth for point data, bytes/ns
POINT_SCAN_BW = 25.0


@dataclass
class StreamclusterResult:
    strategy: str
    n_workers: int
    wall_ns: float
    cost: float
    assignment: np.ndarray
    report: RunReport


def make_points(n_points: int, dims: int, n_clusters: int, seed: int) -> np.ndarray:
    """Synthetic gaussian-mixture points (float32), deterministic."""
    rng = stream_np_rng(seed, "streamcluster")
    centers = rng.normal(0.0, 10.0, size=(n_clusters, dims)).astype(np.float32)
    labels = rng.integers(0, n_clusters, size=n_points)
    return (centers[labels] + rng.normal(0.0, 1.0, size=(n_points, dims))).astype(np.float32)


def assign_reference(points: np.ndarray, centers: np.ndarray):
    """Sequential oracle: nearest-center assignment + total cost."""
    d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assignment = d2.argmin(axis=1)
    return assignment, float(d2.min(axis=1).sum())


class _SCState:
    def __init__(self, n_points: int):
        self.assignment = np.full(n_points, -1, dtype=np.int64)
        self.cost = 0.0


def _chunk_task(pts_region, ctr_region, state: _SCState, points: np.ndarray,
                centers: np.ndarray, lo: int, hi: int, lock: SimLock,
                pts_block: int, n_ctr_blocks: int, scan_ns: float,
                record: bool = True):
    chunk = points[lo:hi]
    # Stream my point rows; centers are hot shared reads.  The straight-line
    # section up to the critical section compiles into one program; the
    # cost fold stays on the generator side so the float accumulation order
    # across chunks is unchanged (it runs at the first resume after the
    # critical row — exactly where the interpreted ops resumed it).
    row_bytes = chunk.shape[1] * 4
    b0 = lo * row_bytes // pts_block
    b1 = max(b0 + 1, -(-hi * row_bytes // pts_block))
    program = OpProgram()
    program.run(pts_region, b0, b1 - b0, compute_ns_per_block=scan_ns)
    program.run(ctr_region, 0, n_ctr_blocks)
    d2 = ((chunk[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    state.assignment[lo:hi] = d2.argmin(axis=1)
    part_cost = float(d2.min(axis=1).sum())
    program.compute(chunk.shape[0] * centers.shape[0] * chunk.shape[1] * DIST_NS_PER_ELEM)
    # Fold the partial cost under the global lock (center-open check).
    program.critical(lock, CRITICAL_NS)
    yield program
    if record:
        state.cost += part_cost
    yield YieldPoint()
    return hi - lo


def run_streamcluster(
    machine: Machine,
    strategy: SchedulingStrategy,
    n_workers: int,
    points: np.ndarray,
    n_centers: int = 12,
    batch_points: Optional[int] = None,
    search_iterations: int = 3,
    seed: int = 7,
) -> StreamclusterResult:
    """Cluster ``points`` in chunked batches under ``strategy``.

    Each batch runs ``search_iterations`` local-search passes over its
    points (PARSEC streamcluster's gain evaluation re-reads the batch many
    times), so the batch's working set is *reused* — a scheduler whose
    chiplet footprint covers it serves passes 2..n from L3, one that packs
    few chiplets re-streams from DRAM (Fig. 9 / Tab. 2).  Chunk count
    scales with workers, so high core counts fragment the per-chunk work
    until the serial center-open section dominates — the speedup collapse
    beyond ~40 cores.
    """
    n_points, dims = points.shape
    runtime = Runtime(machine, n_workers, strategy, seed=seed)
    pts_region = runtime.alloc_shared(
        n_points * dims * 4, read_only=True, name="sc-points"
    )
    ctr_region = runtime.alloc_shared(
        max(n_centers * dims * 4, 512), read_only=False, name="sc-centers", block_bytes=512
    )
    centers = points[:n_centers].copy()
    state = _SCState(n_points)
    lock = SimLock("sc-open")
    batch = batch_points or n_points
    scan_ns = pts_region.block_bytes / POINT_SCAN_BW

    def coordinator(runtime=runtime):
        from repro.runtime.ops import SpawnOp, WaitFuture

        for b0 in range(0, n_points, batch):
            b1 = min(b0 + batch, n_points)
            for sweep in range(search_iterations):
                record = sweep == search_iterations - 1
                n_chunks = max(1, min(n_workers * 4, (b1 - b0) // 8 or 1))
                bounds = np.linspace(b0, b1, n_chunks + 1, dtype=np.int64)
                tasks = []
                for lo, hi in zip(bounds, bounds[1:]):
                    if hi <= lo:
                        continue
                    t = yield SpawnOp(
                        _chunk_task,
                        (pts_region, ctr_region, state, points, centers,
                         int(lo), int(hi), lock, pts_region.block_bytes,
                         ctr_region.n_blocks, scan_ns, record),
                        name=f"sc-{lo}",
                    )
                    tasks.append(t)
                for t in tasks:
                    fut = runtime.completion_future(t)
                    if not fut.done:
                        yield WaitFuture(fut)
        return state.cost

    runtime.spawn(coordinator, name="sc-coordinator")
    report = runtime.run()
    return StreamclusterResult(
        strategy=strategy.name,
        n_workers=n_workers,
        wall_ns=report.wall_ns,
        cost=state.cost,
        assignment=state.assignment,
        report=report,
    )
