"""Fig. 5 microbenchmark: LocalCache vs DistributedCache segmented write.

Eight threads write a shared vector split into contiguous equal segments,
one segment per thread, for a number of iterations with a barrier between
passes (paper section 2.3).  Under **LocalCache** all eight workers sit on
one chiplet, sharing its 32 MB L3 slice and its single fabric link; under
**DistributedCache** each worker gets its own chiplet, enjoying 8x the
aggregate L3 and 8x the fabric bandwidth but paying inter-chiplet barrier
latency every pass.

The paper's observed crossover (LocalCache wins below the L3 slice size,
DistributedCache wins above, peaking ~2.5x) emerges from exactly those
mechanisms.
"""

from dataclasses import dataclass
from typing import List

from repro.hw.machine import Machine
from repro.hw.memory import MemPolicy
from repro.runtime.memory_manager import partition_blocks
from repro.runtime.ops import AccessBatch, WaitBarrier, YieldPoint
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.runtime import Runtime
from repro.runtime.sync import Barrier

#: Per-core streaming-store bandwidth, bytes/ns.  This bounds how fast a
#: core can write even when every access hits the local L3 — the reason
#: the paper's DistributedCache peak is ~2.5x rather than the raw
#: cache-vs-DRAM latency ratio.
STORE_BYTES_PER_NS = 12.0


@dataclass(frozen=True)
class VectorWriteResult:
    """Timing of one (strategy, size) point."""

    strategy: str
    size_bytes: int
    iterations: int
    wall_ns: float

    @property
    def ns_per_iteration(self) -> float:
        return self.wall_ns / self.iterations

    @property
    def bytes_per_ns(self) -> float:
        return self.size_bytes * self.iterations / self.wall_ns


def _segment_writer(segment_blocks: List[int], region, barrier: Barrier, iterations: int,
                    compute_ns_per_block: float):
    """One thread: write my segment, then barrier, repeated."""
    # Warm-up pass (paper: each thread sets its elements to 1 first).
    yield AccessBatch(region, segment_blocks, write=True,
                      compute_ns_per_block=compute_ns_per_block)
    yield WaitBarrier(barrier)
    for _ in range(iterations):
        yield AccessBatch(region, segment_blocks, write=True,
                          compute_ns_per_block=compute_ns_per_block)
        yield WaitBarrier(barrier)
        yield YieldPoint()


def run_vector_write(
    machine: Machine,
    strategy: SchedulingStrategy,
    size_bytes: int,
    n_threads: int = 8,
    iterations: int = 3,
    seed: int = 7,
) -> VectorWriteResult:
    """Run the segmented-write microbenchmark under ``strategy``.

    Returns the measured wall time across ``iterations`` timed passes
    (the warm-up pass is excluded from the per-iteration figure by
    charging it as one extra iteration of wall time).
    """
    runtime = Runtime(machine, n_threads, strategy, seed=seed)
    region = runtime.machine.alloc_region(
        size_bytes, node=0, policy=MemPolicy.BIND, name="fig5-vector"
    )
    n_blocks = region.n_blocks
    compute = region.block_bytes / STORE_BYTES_PER_NS
    barrier = Barrier(n_threads, name="fig5")
    parts = partition_blocks(n_blocks, n_threads)
    for wid, (start, end) in enumerate(parts):
        blocks = list(range(start, end)) or [0]
        runtime.spawn(
            _segment_writer,
            blocks,
            region,
            barrier,
            iterations,
            compute,
            pin_worker=wid,
            name=f"segment-{wid}",
        )
    report = runtime.run()
    # Time only the steady-state passes: the first barrier release marks the
    # end of the (cold, DRAM-bound) warm-up pass, the last marks the end of
    # the final timed pass.
    timed_wall = barrier.release_times[-1] - barrier.release_times[0]
    return VectorWriteResult(
        strategy=strategy.name,
        size_bytes=size_bytes,
        iterations=iterations,
        wall_ns=timed_wall,
    )


def sweep_sizes(l3_bytes_per_chiplet: int, chiplets: int) -> List[int]:
    """Size sweep straddling the paper's interesting boundaries.

    Runs from ~L3/1000 (tiny: barrier-dominated) through the single-slice
    capacity (the crossover) up to many times the aggregate L3
    (DRAM-bound on both sides), mirroring the paper's 38 B - 38 GB sweep
    scaled to the simulated cache sizes.
    """
    l3 = l3_bytes_per_chiplet
    aggregate = l3 * chiplets
    return [
        max(l3 // 1024, 4096),
        l3 // 256,
        l3 // 64,
        l3 // 16,
        l3 // 4,
        l3 // 2,
        (3 * l3) // 4,
        2 * l3,
        4 * l3,
        aggregate // 2,
        2 * aggregate,
        8 * aggregate,
    ]
