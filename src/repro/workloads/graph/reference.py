"""Sequential reference implementations of the graph algorithms.

These are the correctness oracles for the task-parallel versions in
:mod:`repro.workloads.graph.tasks` (and are themselves validated against
networkx in the test suite).
"""

import heapq
from typing import Optional

import numpy as np

from repro.workloads.graph.generator import Graph

UNREACHED = -1


def bfs_reference(g: Graph, root: int) -> np.ndarray:
    """Hop distances from ``root`` (-1 where unreachable)."""
    dist = np.full(g.n, UNREACHED, dtype=np.int64)
    dist[root] = 0
    frontier = [root]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = level
                    nxt.append(int(v))
        frontier = nxt
    return dist


def sssp_reference(g: Graph, root: int) -> np.ndarray:
    """Dijkstra distances from ``root`` (-1 where unreachable)."""
    dist = np.full(g.n, np.iinfo(np.int64).max, dtype=np.int64)
    dist[root] = 0
    heap = [(0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        nbrs = g.neighbors(u)
        wts = g.neighbor_weights(u)
        for v, w in zip(nbrs, wts):
            nd = d + int(w)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    dist[dist == np.iinfo(np.int64).max] = UNREACHED
    return dist


def cc_reference(g: Graph) -> np.ndarray:
    """Connected-component labels: each vertex gets its component's min id."""
    label = np.full(g.n, UNREACHED, dtype=np.int64)
    for s in range(g.n):
        if label[s] != UNREACHED:
            continue
        members = [s]
        label[s] = s
        stack = [s]
        while stack:
            u = stack.pop()
            for v in g.neighbors(u):
                if label[v] == UNREACHED:
                    label[v] = s
                    members.append(int(v))
                    stack.append(int(v))
        # s is the minimum id in its component because we scan in order.
    return label


def pagerank_reference(
    g: Graph, damping: float = 0.85, iterations: int = 10, ranks: Optional[np.ndarray] = None
) -> np.ndarray:
    """Power-iteration PageRank with uniform teleport.

    Degree-0 vertices redistribute their mass uniformly (standard
    dangling-node handling), matching the task-parallel version exactly.
    """
    n = g.n
    rank = np.full(n, 1.0 / n) if ranks is None else ranks.copy()
    out_deg = np.diff(g.indptr).astype(np.float64)
    dangling = out_deg == 0
    for _ in range(iterations):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        new = np.zeros(n)
        # Pull along in-edges; symmetric CSR makes in == out adjacency.
        np.add.at(new, g.indices, np.repeat(contrib, np.diff(g.indptr)))
        dangling_mass = rank[dangling].sum() / n
        rank = (1.0 - damping) / n + damping * (new + dangling_mass)
    return rank
