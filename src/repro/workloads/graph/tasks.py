"""Task-parallel graph algorithms over the simulated runtime.

The algorithms follow the paper's task/RPC model (section 4.6: "We have
kept RING's original API and task/RPC model", which RING inherits from
Grappa's delegation style): vertices are range-partitioned over workers,
and **only the owning worker writes its partition's state**.  Each
level-synchronous round runs one pinned task per active owner, which
drains the owner's message inbox, updates its vertex state
(owner-exclusive writes, no coherence races), expands the newly
activated vertices' adjacency (read-only) and routes discovered visits
to destination owners by writing their inbox buffers.

What gets charged to the simulated machine:

- adjacency (CSR) scans — streaming reads of the read-only ``adj`` region
  (small 512 B blocks: sparse per-vertex lists);
- vertex-state updates — the owner's accesses to its own ``vtx`` range
  (4 KiB blocks, heavy cross-round reuse);
- message-buffer writes by expanders and reads by owners — traffic whose
  cost depends on *where* the two workers sit: same-chiplet/same-socket
  under CHARM's packing vs cross-socket under round-robin NUMA placement
  (the Tab. 1 remote-NUMA fills);
- per-edge compute.

Every algorithm computes its real result (numpy, deterministic) and is
checked against :mod:`repro.workloads.graph.reference` in the tests.
"""

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.runtime.ops import SpawnOp, WaitFuture
from repro.runtime.program import OpProgram
from repro.runtime.runtime import Runtime
from repro.workloads.graph.generator import Graph

UNREACHED = -1
INF = np.iinfo(np.int64).max

#: per-edge ALU work (index arithmetic, compare-and-update), ns
EDGE_COMPUTE_NS = 0.5
#: streaming scan bandwidth for adjacency blocks, bytes/ns
SCAN_BW_BYTES_PER_NS = 25.0
#: per-vertex-block bookkeeping cost, ns
VTX_TOUCH_NS = 6.0
#: bytes fetched per random vertex-state access (one cache line)
VTX_ACCESS_BYTES = 64
#: bytes per CSR index entry
IDX_BYTES = 4
#: bytes of state per vertex in the vtx region
VTX_BYTES = 16
#: bytes per routed message (batched visit: vertex id + payload)
MSG_BYTES = 8


def _ranges_to_blocks(starts: np.ndarray, ends: np.ndarray, block_bytes: int) -> np.ndarray:
    """Unique block indices covered by byte ranges [starts, ends)."""
    live = ends > starts
    if not live.any():
        return np.empty(0, dtype=np.int64)
    starts = starts[live]
    ends = ends[live]
    first = starts // block_bytes
    last = (ends - 1) // block_bytes
    span = (last - first + 1).astype(np.int64)
    total = int(span.sum())
    base = np.repeat(first, span)
    offset = np.arange(total) - np.repeat(np.cumsum(span) - span, span)
    return np.unique(base + offset)


def gather_neighbors(g: Graph, vertices: np.ndarray):
    """Vectorised CSR gather: (edge indices, neighbour ids, per-vertex counts)."""
    starts = g.indptr[vertices]
    counts = g.indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.int32), counts
    idx = np.repeat(starts, counts) + (
        np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    )
    return idx, g.indices[idx], counts


class GraphWorkspace:
    """Regions, partitioning and block-layout arithmetic for one run."""

    #: CSR adjacency is sparse per vertex: small blocks so cache capacity
    #: is charged for what a chunk actually touches.
    ADJ_BLOCK_BYTES = 512
    #: vertex state is revisited densely: page-sized blocks.
    VTX_BLOCK_BYTES = 4096
    #: message buffers: batched visits, 512 B per buffer block.
    MSG_BLOCK_BYTES = 512

    def __init__(self, runtime: Runtime, graph: Graph):
        self.runtime = runtime
        self.graph = graph
        self.n_parts = len(runtime.workers)
        self.adj = runtime.alloc_shared(
            max(graph.adjacency_bytes, self.ADJ_BLOCK_BYTES),
            read_only=True,
            name="graph-adj",
            block_bytes=self.ADJ_BLOCK_BYTES,
        )
        self.vtx = runtime.alloc_shared(
            max(graph.n * VTX_BYTES, self.VTX_BLOCK_BYTES),
            read_only=False,
            name="graph-vtx",
            block_bytes=self.VTX_BLOCK_BYTES,
        )
        # Per-owner inbox: enough buffer blocks for a full-partition round.
        self.inbox_stride = max(
            2, -(-(graph.n * MSG_BYTES) // (self.n_parts * self.MSG_BLOCK_BYTES)) + 1
        )
        self.msg = runtime.alloc_shared(
            self.n_parts * self.inbox_stride * self.MSG_BLOCK_BYTES,
            read_only=False,
            name="graph-msg",
            block_bytes=self.MSG_BLOCK_BYTES,
        )
        self.scan_ns_per_block = self.ADJ_BLOCK_BYTES / SCAN_BW_BYTES_PER_NS

    # -- Partitioning (contiguous vertex ranges, one per worker) ------------

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return (vertices.astype(np.int64) * self.n_parts) // self.graph.n

    def part_range(self, part: int) -> Tuple[int, int]:
        n, p = self.graph.n, self.n_parts
        return (n * part) // p, (n * (part + 1)) // p

    def group_by_owner(self, vertices: np.ndarray, payload: Optional[np.ndarray] = None):
        """Split (vertices[, payload]) into per-owner sub-arrays."""
        verts: List[Optional[np.ndarray]] = [None] * self.n_parts
        loads: List[Optional[np.ndarray]] = [None] * self.n_parts
        if vertices.size == 0:
            return verts, loads
        owners = self.owner_of(vertices)
        order = np.argsort(owners, kind="stable")
        vertices = vertices[order]
        owners = owners[order]
        if payload is not None:
            payload = payload[order]
        bounds = np.searchsorted(owners, np.arange(self.n_parts + 1))
        for p in range(self.n_parts):
            lo, hi = bounds[p], bounds[p + 1]
            if hi > lo:
                verts[p] = vertices[lo:hi]
                if payload is not None:
                    loads[p] = payload[lo:hi]
        return verts, loads

    # -- Block arithmetic ------------------------------------------------------

    def adj_blocks_for(self, vertices: np.ndarray) -> np.ndarray:
        """Sorted-unique adjacency blocks for a vertex frontier (ndarray).

        The sorted int64 array feeds ``Machine.access_batch`` directly:
        no per-block Python list, and the machine's sortedness probe
        proves distinctness for free.
        """
        starts = (self.graph.indptr[vertices] * IDX_BYTES).astype(np.int64)
        ends = (self.graph.indptr[vertices + 1] * IDX_BYTES).astype(np.int64)
        return _ranges_to_blocks(starts, ends, self.ADJ_BLOCK_BYTES)

    def adj_run(self, v0: int, v1: int) -> Tuple[int, int]:
        """Adjacency scan of the vertex range ``[v0, v1)`` as ``(start, count)``.

        CSR adjacency for a contiguous vertex range is one contiguous byte
        range, so the scan run-compresses exactly — the shape
        :class:`~repro.runtime.ops.AccessRun` carries without ever
        materializing block indices.
        """
        start = int(self.graph.indptr[v0]) * IDX_BYTES
        end = int(self.graph.indptr[v1]) * IDX_BYTES
        if end <= start:
            return 0, 0
        bb = self.ADJ_BLOCK_BYTES
        b0 = start // bb
        return b0, (end - 1) // bb + 1 - b0

    def adj_blocks_range(self, v0: int, v1: int) -> List[int]:
        b0, count = self.adj_run(v0, v1)
        return list(range(b0, b0 + count))

    def vtx_blocks_for(self, vertices: np.ndarray) -> np.ndarray:
        """Sorted-unique vertex-state blocks touched by ``vertices``.

        Dedupe via an O(n) block bitmap instead of ``np.unique`` — the
        hash/sort inside unique was the top host-time cost of the
        PageRank rounds — and hand the sorted ndarray straight to the
        machine (callers need not pre-unique their vertex arrays).
        """
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        blocks = vertices.astype(np.int64) * VTX_BYTES // self.VTX_BLOCK_BYTES
        mask = np.zeros(int(blocks.max()) + 1, dtype=bool)
        mask[blocks] = True
        return np.flatnonzero(mask)

    def vtx_run(self, v0: int, v1: int) -> Tuple[int, int]:
        """Vertex-state blocks of the owned range ``[v0, v1)`` as ``(start, count)``."""
        if v1 <= v0:
            return 0, 0
        b0 = (v0 * VTX_BYTES) // self.VTX_BLOCK_BYTES
        return b0, ((v1 - 1) * VTX_BYTES) // self.VTX_BLOCK_BYTES - b0 + 1

    def inbox_run(self, owner: int, n_messages: int) -> Tuple[int, int]:
        """Buffer-block run of ``owner``'s inbox as ``(start, count)``."""
        if n_messages <= 0:
            return 0, 0
        n_blocks = min(self.inbox_stride, -(-(n_messages * MSG_BYTES) // self.MSG_BLOCK_BYTES))
        return owner * self.inbox_stride, n_blocks

    def inbox_blocks(self, owner: int, n_messages: int) -> List[int]:
        """Buffer blocks of ``owner``'s inbox holding ``n_messages`` visits."""
        base, n_blocks = self.inbox_run(owner, n_messages)
        return list(range(base, base + n_blocks))

    def outbox_block_array(self, dest_counts: np.ndarray) -> np.ndarray:
        """All inbox blocks a sender must write, as one sorted int64 array.

        Concatenating the per-destination runs in destination order keeps
        the array strictly increasing (inboxes are disjoint strided
        windows), so it must stay a *single* access op — splitting it into
        per-destination ops would change the batch's virtual-time
        accounting — and the machine again gets distinctness for free.
        """
        runs = [
            np.arange(base, base + count, dtype=np.int64)
            for base, count in (
                self.inbox_run(int(dest), int(dest_counts[dest]))
                for dest in np.flatnonzero(dest_counts)
            )
        ]
        if not runs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(runs)

    def outbox_blocks(self, dest_counts: np.ndarray) -> List[int]:
        """All inbox blocks a sender must write, given per-dest counts."""
        return self.outbox_block_array(dest_counts).tolist()

    def edge_chunks(self, vertices: np.ndarray, target_chunks: int) -> List[np.ndarray]:
        """Split vertices into chunks of roughly equal *edge* counts.

        This is the hub-splitting step: a partition owning high-degree
        R-MAT hubs would otherwise serialise the whole round.
        """
        if vertices.size == 0:
            return []
        degs = (self.graph.indptr[vertices + 1] - self.graph.indptr[vertices]).astype(np.int64)
        total = int(degs.sum())
        budget = max(1024, total // max(1, target_chunks))
        cuts = np.searchsorted(np.cumsum(degs), np.arange(budget, total, budget))
        return [c for c in np.split(vertices, cuts) if c.size]


@dataclass
class GraphState:
    """Mutable algorithm state shared by coordinator and chunk tasks."""

    dist: np.ndarray = None
    label: np.ndarray = None
    rank: np.ndarray = None
    edges_traversed: int = 0
    rounds: int = 0


def _wait_tasks(runtime: Runtime, tasks) -> Generator:
    """Wait for spawned tasks; returns their results in order."""
    results = []
    for t in tasks:
        fut = runtime.completion_future(t)
        if fut.done:
            results.append(fut.value)
        else:
            results.append((yield WaitFuture(fut)))
    return results


# -- Generic two-phase round machinery ---------------------------------------------


def _owner_round_task(ws: GraphWorkspace, state: GraphState, part: int,
                      cand_v: np.ndarray, cand_p: Optional[np.ndarray],
                      kind: str, arg: int):
    """Pinned owner task: drain inbox, update owned state, expand, route.

    One task per active owner per round — the owner-exclusive state update
    means no coherence races on vertex state; the expansion's adjacency
    reads are read-only and the routed visits are inbox-buffer writes
    whose cost depends on sender/receiver placement.
    """
    g = ws.graph
    # The whole round is one compiled program: the owner-exclusive state
    # update means the host-side numpy work commutes across owner tasks
    # (disjoint vertex ranges; coordinator barriers between rounds), so it
    # all runs at build time and the worker walks the rows in one go.
    program = OpProgram()
    inbox_base, inbox_count = ws.inbox_run(part, cand_v.size)
    program.run(ws.msg, inbox_base, inbox_count)
    uniq = np.unique(cand_v)
    # Deduped state write-back: each owned vertex's state is updated once
    # per round regardless of how many messages named it — the per-message
    # examination cost is the inbox drain above, not extra memory writes.
    # (Charging one write per message would add duplicate traffic that is
    # placement-insensitive and dilutes the placement signal.)
    program.batch(
        ws.vtx, ws.vtx_blocks_for(uniq), write=True,
        nbytes=VTX_ACCESS_BYTES, compute_ns_per_block=VTX_TOUCH_NS,
    )
    program.compute(cand_v.size * 1.2)
    if kind == "bfs":
        new = uniq[state.dist[uniq] == UNREACHED]
        state.dist[new] = arg  # arg = level
    elif kind == "sssp":
        before = state.dist[cand_v]
        np.minimum.at(state.dist, cand_v, cand_p)
        new = np.unique(cand_v[state.dist[cand_v] < before])
    elif kind == "cc":
        before = state.label[cand_v]
        np.minimum.at(state.label, cand_v, cand_p)
        new = np.unique(cand_v[state.label[cand_v] < before])
    elif kind == "cc-seed":
        new = uniq
    else:  # pragma: no cover - defensive
        raise ValueError(kind)
    if new.size == 0:
        program.yield_()
        yield program
        return None
    # Expand: scan adjacency of newly activated vertices, route visits.
    program.batch(ws.adj, ws.adj_blocks_for(new),
                  compute_ns_per_block=ws.scan_ns_per_block)
    idx, nbrs, counts = gather_neighbors(g, new)
    edges = int(counts.sum())
    state.edges_traversed += edges
    program.compute(edges * EDGE_COMPUTE_NS * (1.3 if kind == "sssp" else 1.0))
    if nbrs.size == 0:
        program.yield_()
        yield program
        return None
    nbrs64 = nbrs.astype(np.int64)
    if kind == "bfs":
        payload = None
    elif kind == "sssp":
        payload = np.repeat(state.dist[new], counts) + g.weights[idx]
    else:  # cc / cc-seed
        payload = np.repeat(state.label[new], counts)
    dest_counts = np.bincount(ws.owner_of(nbrs64), minlength=ws.n_parts)
    program.batch(ws.msg, ws.outbox_block_array(dest_counts), write=True)
    program.yield_()
    yield program
    return nbrs64, payload


def _frontier_loop(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                   seed_v: np.ndarray, seed_p: Optional[np.ndarray], kind: str,
                   seed_kind: Optional[str] = None):
    """Shared coordinator: per-owner rounds until the frontier drains."""
    inbox_v, inbox_p = ws.group_by_owner(seed_v, seed_p)
    level = 0
    first = True
    while any(v is not None for v in inbox_v):
        level += 1
        state.rounds += 1
        round_kind = seed_kind if (first and seed_kind) else kind
        first = False
        tasks = []
        for part in range(ws.n_parts):
            if inbox_v[part] is None:
                continue
            t = yield SpawnOp(
                _owner_round_task,
                (ws, state, part, inbox_v[part], inbox_p[part], round_kind, level),
                pin_worker=part, name=f"{kind}-p{part}",
            )
            tasks.append(t)
        produced = yield from _wait_tasks(runtime, tasks)
        out_v, out_p = [], []
        for item in produced:
            if item is not None:
                out_v.append(item[0])
                if item[1] is not None:
                    out_p.append(item[1])
        if out_v:
            all_v = np.concatenate(out_v)
            all_p = np.concatenate(out_p) if out_p else None
            inbox_v, inbox_p = ws.group_by_owner(all_v, all_p)
        else:
            inbox_v = [None] * ws.n_parts
            inbox_p = [None] * ws.n_parts


# -- BFS ---------------------------------------------------------------------------


def bfs_coordinator(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                    root: int, chunk_size: int = 0):
    """Level-synchronous owner-compute BFS from ``root``."""
    seed = np.array([root], dtype=np.int64)
    yield from _frontier_loop(runtime, ws, state, seed, None, "bfs")
    # The root entered via the seeding message, so every reached vertex is
    # one level high; shift down and pin the root at 0.
    state.dist[state.dist > 0] -= 1
    state.dist[root] = 0
    return state.dist


# -- SSSP --------------------------------------------------------------------------


def sssp_coordinator(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                     root: int, chunk_size: int = 0):
    """Owner-compute relaxation; converges to exact shortest paths."""
    state.dist[:] = INF
    seed_v = np.array([root], dtype=np.int64)
    seed_p = np.zeros(1, dtype=np.int64)
    yield from _frontier_loop(runtime, ws, state, seed_v, seed_p, "sssp")
    state.dist[state.dist == INF] = UNREACHED
    return state.dist


# -- Connected components ------------------------------------------------------------


def cc_coordinator(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                   chunk_size: int = 0):
    """Min-label propagation until fixpoint; labels equal component minima."""
    n = ws.graph.n
    state.label[:] = np.arange(n, dtype=np.int64)
    seed_v = np.arange(n, dtype=np.int64)
    seed_p = np.arange(n, dtype=np.int64)
    yield from _frontier_loop(runtime, ws, state, seed_v, seed_p, "cc", seed_kind="cc-seed")
    return state.label


# -- PageRank (owner-compute pull iteration) ------------------------------------------------


def _pr_owner_task(ws: GraphWorkspace, state: GraphState, part: int,
                   contrib: np.ndarray, new_rank: np.ndarray):
    """Compute this owner's vertex range from in-neighbour contributions."""
    g = ws.graph
    v0, v1 = ws.part_range(part)
    if v1 <= v0:
        return 0
    # One compiled program per owner per iteration: contributions are
    # coordinator-built read-only input and the rank writes are disjoint
    # owner slices, so the host-side reduction commutes across owners.
    program = OpProgram()
    adj_base, adj_count = ws.adj_run(v0, v1)
    program.run(ws.adj, adj_base, adj_count,
                compute_ns_per_block=ws.scan_ns_per_block)
    lo, hi = int(g.indptr[v0]), int(g.indptr[v1])
    srcs = g.indices[lo:hi].astype(np.int64)
    state.edges_traversed += hi - lo
    program.compute(float(hi - lo) * EDGE_COMPUTE_NS * 1.4)
    # Random reads of remote owners' rank blocks (invalidated every round
    # by their owners' writes — the cross-chiplet refetch traffic).
    # vtx_blocks_for dedupes via its block bitmap, so srcs goes in raw.
    program.batch(
        ws.vtx, ws.vtx_blocks_for(srcs),
        nbytes=VTX_ACCESS_BYTES, compute_ns_per_block=VTX_TOUCH_NS,
    )
    counts = np.diff(g.indptr[v0 : v1 + 1])
    row = np.repeat(np.arange(v1 - v0), counts)
    new_rank[v0:v1] = np.bincount(row, weights=contrib[srcs], minlength=v1 - v0)
    # Write back my rank range (owner-exclusive; invalidates readers).
    vtx_base, vtx_count = ws.vtx_run(v0, v1)
    program.run(ws.vtx, vtx_base, vtx_count,
                write=True, nbytes=VTX_ACCESS_BYTES)
    program.yield_()
    yield program
    return v1 - v0


def pagerank_coordinator(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                         chunk_size: int = 0, iterations: int = 10, damping: float = 0.85):
    """Power iteration matching :func:`pagerank_reference` bit-for-bit."""
    g = ws.graph
    n = g.n
    out_deg = np.diff(g.indptr).astype(np.float64)
    dangling = out_deg == 0
    state.rank = np.full(n, 1.0 / n)
    for _ in range(iterations):
        state.rounds += 1
        contrib = np.where(dangling, 0.0, state.rank / np.maximum(out_deg, 1.0))
        new_rank = np.zeros(n)
        tasks = []
        for part in range(ws.n_parts):
            v0, v1 = ws.part_range(part)
            if v1 <= v0:
                continue
            t = yield SpawnOp(_pr_owner_task, (ws, state, part, contrib, new_rank),
                              pin_worker=part, name=f"pr-p{part}")
            tasks.append(t)
        yield from _wait_tasks(runtime, tasks)
        dangling_mass = state.rank[dangling].sum() / n
        state.rank = (1.0 - damping) / n + damping * (new_rank + dangling_mass)
    return state.rank
