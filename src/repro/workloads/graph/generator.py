"""Kronecker (R-MAT) graph generation, Graph500-style.

The paper's graph benchmarks use "a Kronecker graph model with 2^24
vertices and 16 x 2^24 edges" — the Graph500 generator.  This module
implements the same recursive-matrix edge generator (default Graph500
parameters A=0.57, B=0.19, C=0.19) with numpy, then builds undirected CSR
adjacency (and the in-edge CSR needed by PageRank's pull step, which for
a symmetrised graph equals the out-CSR).

Graphs are value objects: generation is deterministic in the seed, and
edge weights (for SSSP) are uniform integers in [1, 255] as in Graph500's
SSSP extension.
"""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.sim.rng import stream_np_rng


@dataclass(frozen=True)
class Graph:
    """Undirected weighted graph in CSR form.

    ``indptr``/``indices`` give each vertex's sorted neighbour list;
    ``weights`` aligns with ``indices``.  Degree-0 vertices are allowed
    (Kronecker graphs have many).
    """

    n: int
    indptr: np.ndarray   # int64, len n+1
    indices: np.ndarray  # int32, len m
    weights: np.ndarray  # int32, len m

    @property
    def m(self) -> int:
        """Directed edge count (2x the undirected edge count)."""
        return int(self.indices.shape[0])

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    @property
    def adjacency_bytes(self) -> int:
        """Footprint of the CSR arrays (4 B per index/weight + indptr)."""
        return 4 * self.m * 2 + 8 * (self.n + 1)

    def max_degree_vertex(self) -> int:
        degs = np.diff(self.indptr)
        return int(np.argmax(degs))


def _rmat_edges(scale: int, edgefactor: int, seed: int,
                a: float = 0.57, b: float = 0.19, c: float = 0.19) -> np.ndarray:
    """Generate R-MAT directed edges, shape (m, 2)."""
    n = 1 << scale
    m = edgefactor * n
    rng = stream_np_rng(seed, "rmat", scale, edgefactor)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    c_norm = c / (1.0 - ab)
    a_norm = a / ab
    for bit in range(scale):
        r1 = rng.random(m)
        r2 = rng.random(m)
        src_bit = r1 > ab
        dst_bit = (r2 > (c_norm * src_bit + a_norm * ~src_bit))
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    # Graph500 permutes vertex labels to break generator locality.
    perm = rng.permutation(n)
    return np.stack([perm[src], perm[dst]], axis=1)


def from_edge_list(n: int, edges: np.ndarray, seed: int = 1) -> Graph:
    """Build an undirected CSR graph from a directed edge array (m, 2).

    Symmetrises, removes self loops and parallel duplicates, sorts
    neighbour lists, and assigns deterministic weights in [1, 255].
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        indptr = np.zeros(n + 1, dtype=np.int64)
        return Graph(n, indptr, np.empty(0, np.int32), np.empty(0, np.int32))
    if edges.min() < 0 or edges.max() >= n:
        raise ValueError("edge endpoint out of range")
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # Dedupe parallel edges via the packed key.
    key = src * n + dst
    key = np.unique(key)
    src = (key // n).astype(np.int64)
    dst = (key % n).astype(np.int32)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Deterministic symmetric weights: hash of the unordered endpoint pair.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    weights = ((lo * 2654435761 + hi * 40503) % 255 + 1).astype(np.int32)
    rng_check = stream_np_rng(seed, "weights")  # reserved for future jitter
    del rng_check
    return Graph(n, indptr, dst.astype(np.int32), weights)


def kronecker(scale: int, edgefactor: int = 16, seed: int = 1) -> Graph:
    """Graph500 Kronecker graph: 2**scale vertices, ~edgefactor*2**scale edges."""
    if scale < 1 or scale > 26:
        raise ValueError("scale out of supported range (1..26)")
    if edgefactor < 1:
        raise ValueError("edgefactor must be positive")
    n = 1 << scale
    edges = _rmat_edges(scale, edgefactor, seed)
    return from_edge_list(n, edges, seed=seed)


def ring_of_cliques(n_cliques: int, clique_size: int) -> Graph:
    """Deterministic structured test graph: cliques joined in a ring."""
    edges: List[Tuple[int, int]] = []
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % n_cliques) * clique_size
        edges.append((base, nxt))
    n = n_cliques * clique_size
    return from_edge_list(n, np.array(edges, dtype=np.int64))
