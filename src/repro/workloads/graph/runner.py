"""Experiment entry points for the graph benchmarks.

``run_graph_algorithm`` executes one (algorithm, strategy, core count)
cell of Fig. 7 / Fig. 8 / Fig. 10 and returns both the computed result
(for correctness checks) and the performance record (for the tables).
Throughput is reported in traversed edges per second (TEPS), the metric
used by Graph500 and, qualitatively, by the paper's Fig. 7 y-axes.
"""

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.hw.machine import Machine
from repro.runtime.policy import SchedulingStrategy
from repro.runtime.runtime import Runtime, RunReport
from repro.sim.rng import stream_rng
from repro.workloads.graph.generator import Graph
from repro.workloads.graph.tasks import (
    GraphState,
    GraphWorkspace,
    UNREACHED,
    bfs_coordinator,
    cc_coordinator,
    pagerank_coordinator,
    sssp_coordinator,
)


@dataclass
class GraphRunResult:
    """One cell of a graph-benchmark matrix."""

    algorithm: str
    strategy: str
    n_workers: int
    wall_ns: float
    edges_traversed: int
    rounds: int
    result: np.ndarray
    report: RunReport

    @property
    def teps(self) -> float:
        """Traversed edges per (virtual) second."""
        if self.wall_ns <= 0:
            return 0.0
        return self.edges_traversed / (self.wall_ns * 1e-9)

    @property
    def mteps(self) -> float:
        return self.teps / 1e6


def _pick_root(graph: Graph, seed: int, salt: int = 0) -> int:
    """A random vertex with non-zero degree (Graph500 root sampling)."""
    rng = stream_rng(seed, "root", salt)
    degs = np.diff(graph.indptr)
    candidates = np.flatnonzero(degs > 0)
    if candidates.size == 0:
        return 0
    return int(candidates[rng.randrange(candidates.size)])


def default_chunk_size(graph: Graph, n_workers: int) -> int:
    """Several chunks per worker per round, bounded for cache residence."""
    return max(32, min(512, graph.n // max(1, n_workers * 4)))


def run_graph_algorithm(
    machine: Machine,
    strategy: SchedulingStrategy,
    algorithm: str,
    graph: Graph,
    n_workers: int,
    seed: int = 7,
    chunk_size: Optional[int] = None,
    pagerank_iterations: int = 5,
    graph500_roots: int = 4,
) -> GraphRunResult:
    """Run one graph algorithm under one strategy; returns result + metrics."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; have {sorted(ALGORITHMS)}")
    runtime = Runtime(machine, n_workers, strategy, seed=seed)
    ws = GraphWorkspace(runtime, graph)
    state = GraphState(
        dist=np.full(graph.n, UNREACHED, dtype=np.int64),
        label=np.arange(graph.n, dtype=np.int64),
    )
    chunk = chunk_size or default_chunk_size(graph, n_workers)

    if algorithm == "bfs":
        root = _pick_root(graph, seed)
        runtime.spawn(bfs_coordinator, runtime, ws, state, root, chunk, name="bfs")
    elif algorithm == "sssp":
        root = _pick_root(graph, seed)
        runtime.spawn(sssp_coordinator, runtime, ws, state, root, chunk, name="sssp")
    elif algorithm == "cc":
        runtime.spawn(cc_coordinator, runtime, ws, state, chunk, name="cc")
    elif algorithm == "pagerank":
        runtime.spawn(
            pagerank_coordinator, runtime, ws, state, chunk, pagerank_iterations, name="pagerank"
        )
    elif algorithm == "graph500":
        runtime.spawn(
            _graph500_coordinator, runtime, ws, state, chunk, seed, graph500_roots,
            name="graph500",
        )
    report = runtime.run()

    if algorithm == "bfs" or algorithm == "sssp" or algorithm == "graph500":
        result = state.dist
    elif algorithm == "cc":
        result = state.label
    else:
        result = state.rank
    return GraphRunResult(
        algorithm=algorithm,
        strategy=strategy.name,
        n_workers=n_workers,
        wall_ns=report.wall_ns,
        edges_traversed=state.edges_traversed,
        rounds=state.rounds,
        result=result,
        report=report,
    )


def _graph500_coordinator(runtime: Runtime, ws: GraphWorkspace, state: GraphState,
                          chunk: int, seed: int, n_roots: int):
    """Graph500 kernel-2 harness: repeated BFS from sampled roots."""
    for r in range(n_roots):
        root = _pick_root(ws.graph, seed, salt=r)
        state.dist[:] = UNREACHED
        result = yield from bfs_coordinator(runtime, ws, state, root, chunk)
    return result


ALGORITHMS: Dict[str, str] = {
    "bfs": "Breadth-First Search",
    "pagerank": "PageRank",
    "cc": "Connected Components",
    "sssp": "Single-Source Shortest Paths",
    "graph500": "Graph500 (multi-root BFS)",
}
