"""Graph processing workloads (paper section 5.1).

- :mod:`repro.workloads.graph.generator` — Graph500-style Kronecker
  (R-MAT) graph generation into CSR form;
- :mod:`repro.workloads.graph.reference` — sequential reference
  implementations used as correctness oracles;
- :mod:`repro.workloads.graph.tasks` — the task-parallel versions that run
  on the simulated runtime, computing real results while charging memory
  accesses at block granularity;
- :mod:`repro.workloads.graph.runner` — the per-algorithm experiment entry
  points used by the Fig. 7 / Fig. 8 / Fig. 10 / Tab. 1 benchmarks.
"""

from repro.workloads.graph.generator import Graph, kronecker, from_edge_list
from repro.workloads.graph.runner import GraphRunResult, run_graph_algorithm, ALGORITHMS

__all__ = [
    "Graph",
    "kronecker",
    "from_edge_list",
    "GraphRunResult",
    "run_graph_algorithm",
    "ALGORITHMS",
]
