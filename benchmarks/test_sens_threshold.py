"""Section 4.6: RMT_CHIP_ACCESS_RATE sensitivity sweep."""

from conftest import run_experiment

from repro.bench import experiments


def test_sens_threshold(benchmark, quick):
    rows = run_experiment(benchmark, experiments.sens_threshold, quick)
    walls = {r["threshold"]: r["wall_ms"] for r in rows}
    # The calibrated default (24) must be at least as good as the extremes.
    assert walls[24] <= min(walls[4], walls[96]) * 1.15
