"""Fig. 4: cores vs memory channels divergence."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig04_channels(benchmark):
    rows = run_experiment(benchmark, experiments.fig04_channels)
    ratio = [r["cores_per_channel"] for r in rows]
    # Bandwidth per core declines monotonically over the years.
    assert ratio == sorted(ratio)
    assert ratio[-1] / ratio[0] > 10
