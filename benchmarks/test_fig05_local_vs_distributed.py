"""Fig. 5: LocalCache vs DistributedCache write crossover."""

from conftest import run_experiment

from repro.bench import experiments
from repro.hw.machine import milan


def test_fig05_crossover(benchmark, quick):
    rows = run_experiment(benchmark, experiments.fig05_local_vs_distributed, quick)
    l3 = milan(scale=experiments.MACHINE_SCALE).l3_bytes_per_chiplet // 1024
    small = [r for r in rows if r["size_kib"] <= l3 // 4]
    large = [r for r in rows if r["size_kib"] >= 2 * l3]
    # Paper: LocalCache wins below the slice capacity (speedup < 1),
    # DistributedCache wins above, peaking ~2.5x (ours up to ~3x).
    assert all(r["dist_speedup"] < 1.05 for r in small), small
    assert all(r["dist_speedup"] > 1.5 for r in large), large
    assert max(r["dist_speedup"] for r in rows) < 5.0
