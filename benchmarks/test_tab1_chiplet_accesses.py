"""Tab. 1: remote-NUMA vs local-chiplet fill counters at 64 cores."""

from conftest import run_experiment

from repro.bench import experiments


def test_tab1_chiplet_accesses(benchmark, quick):
    rows = run_experiment(benchmark, experiments.tab1_chiplet_accesses, quick)
    for r in rows:
        # Paper: CHARM's remote-NUMA fills are orders of magnitude below
        # RING's, while its local-chiplet fills are higher.
        assert r["remote_numa_charm"] * 10 < max(r["remote_numa_ring"], 1), r
        assert r["local_chiplet_charm"] > r["local_chiplet_ring"] * 0.8, r
