"""Fig. 7: graph + RandomAccess scalability on the AMD Milan model."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig07_amd_scalability(benchmark, quick):
    series = run_experiment(benchmark, experiments.fig07_amd_scalability, quick)
    bfs_charm = dict(series["bfs/charm"])
    bfs_ring = dict(series["bfs/ring"])
    # CHARM scales up to 64 cores and clearly beats RING there.
    assert bfs_charm[64] > bfs_charm[8]
    assert bfs_charm[64] >= 1.25 * bfs_ring[64]
    # GUPS: same ordering.
    gups_charm = dict(series["gups/charm"])
    gups_ring = dict(series["gups/ring"])
    assert gups_charm[64] > 1.3 * gups_ring[64]
