"""Tab. 2: streamcluster memory/cache accesses across core counts."""

from conftest import run_experiment

from repro.bench import experiments


def test_tab2_streamcluster_accesses(benchmark, quick):
    rows = run_experiment(benchmark, experiments.tab2_streamcluster_accesses, quick)
    by_cores = {r["cores"]: r for r in rows}
    # Paper: at 8 cores SHOAL has many times CHARM's main-memory accesses;
    # by 64 cores the two systems' access patterns converge.
    assert by_cores[8]["dram_shoal"] > 1.5 * by_cores[8]["dram_charm"]
    conv = by_cores[64]
    assert abs(conv["dram_shoal"] - conv["dram_charm"]) <= 0.2 * conv["dram_charm"] + 64
