"""Ablation: adaptive spread_rate vs static spreads."""

from conftest import run_experiment

from repro.bench import experiments


def test_abl_spread(benchmark, quick):
    rows = run_experiment(benchmark, experiments.abl_spread, quick)
    walls = {r["policy"]: r["wall_ms"] for r in rows}
    best_static = min(v for k, v in walls.items() if k.startswith("static"))
    # Adaptive should track the best static configuration closely.
    assert walls["adaptive"] <= best_static * 1.25, walls
