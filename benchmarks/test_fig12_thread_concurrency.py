"""Fig. 12: thread concurrency, coroutines vs std::async."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig12_concurrency(benchmark, quick):
    rows = run_experiment(benchmark, experiments.fig12_concurrency, quick)
    by = {r["scheme"]: r for r in rows}
    # CHARM's concurrency stays near the core count; std::async fluctuates
    # far below it while creating many more threads.
    assert by["charm"]["avg_concurrency"] > 0.6 * 32
    assert by["charm-async"]["avg_concurrency"] < by["charm"]["avg_concurrency"] / 2
    assert by["charm-async"]["threads_created"] >= by["charm"]["threads_created"]
