"""Fig. 13: TPC-H query times, stock vs +CHARM."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig13_tpch(benchmark, quick):
    rows = run_experiment(benchmark, experiments.fig13_tpch, quick)
    speedups = [r["speedup"] for r in rows]
    joins = [r["speedup"] for r in rows if r["kind"] == "join"]
    # CHARM helps overall, most notably on join-heavy queries, and never
    # costs more than a small overhead.
    assert sum(speedups) / len(speedups) > 0.98
    assert max(joins) > 1.1
    assert min(speedups) > 0.8
