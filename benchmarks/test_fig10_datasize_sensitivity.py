"""Fig. 10: CHARM speedup over RING across graph sizes."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig10_datasize(benchmark, quick):
    rows = run_experiment(benchmark, experiments.fig10_datasize, quick)
    # CHARM consistently outperforms RING across all sizes and core counts.
    assert all(r["speedup_vs_ring"] > 1.0 for r in rows), rows
