"""Fig. 11: SGD loss/gradient throughput across schemes."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig11_sgd(benchmark, quick):
    out = run_experiment(benchmark, experiments.fig11_sgd, quick)
    for kernel in ("loss", "gradient"):
        series = out[kernel]
        charm = dict(series["charm"])
        numa = dict(series["numa-node"])
        osa = dict(series["charm-async"])
        best_core = max(charm, key=lambda c: charm[c])
        # CHARM well above the best native scheme; std::async variant below it.
        assert charm[best_core] > 2.0 * numa[best_core]
        assert osa[best_core] < numa[best_core]
        # Native schemes are roughly flat (no scaling with cores).
        cores = sorted(numa)
        assert numa[cores[-1]] < 2.0 * numa[cores[0]]
