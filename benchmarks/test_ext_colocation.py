"""Extension: multi-tenant co-location interference (paper future work)."""

from conftest import run_experiment

from repro.bench import experiments


def test_ext_colocation(benchmark, quick):
    rows = run_experiment(benchmark, experiments.ext_colocation, quick)
    by = {r["antagonist"]: r["slowdown"] for r in rows}
    # A noisy neighbour on the victim's socket hurts at least as much as
    # one isolated on the other socket; isolation is the baseline.
    assert by["isolated"] == 1.0
    assert by["same-socket"] >= by["other-socket"] * 0.98
    assert by["same-socket"] > 1.02  # interference is real
