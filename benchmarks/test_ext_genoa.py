"""Extension: CHARM on a next-generation 12-chiplet (Genoa) machine."""

from conftest import run_experiment

from repro.bench import experiments


def test_ext_genoa_whatif(benchmark, quick):
    series = run_experiment(benchmark, experiments.ext_genoa_whatif, quick)
    charm = dict(series["charm"])
    ring = dict(series["ring"])
    # The chiplet-aware advantage persists on the denser-chiplet part.
    one_socket = max(c for c in charm if c <= 96)
    assert charm[one_socket] > ring[one_socket]
