"""Ablation: chiplet-first hierarchical stealing vs flat random."""

from conftest import run_experiment

from repro.bench import experiments


def test_abl_stealing(benchmark, quick):
    rows = run_experiment(benchmark, experiments.abl_stealing, quick)
    # Hierarchical stealing should not lose to flat stealing.
    assert all(r["gain"] > 0.9 for r in rows), rows
