"""Shared benchmark configuration.

Set ``REPRO_BENCH_FULL=1`` to run the full paper-shaped sweeps instead of
the quick matrices.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run one experiment exactly once under pytest-benchmark and print it."""
    result = {}

    def once():
        rows, text = fn(*args, **kwargs)
        result["rows"] = rows
        result["text"] = text
        return rows

    benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(result["text"])
    return result["rows"]
