"""Shared benchmark configuration.

Set ``REPRO_BENCH_FULL=1`` to run the full paper-shaped sweeps instead of
the quick matrices.  Set ``REPRO_BENCH_JOBS=N`` to route experiments
through the parallel sweep engine (N worker processes, 0 = auto) instead
of running them inline — results are bit-identical either way.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def _sweep_jobs():
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    return int(raw) if raw else None


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run one experiment exactly once under pytest-benchmark and print it.

    With ``REPRO_BENCH_JOBS`` set, the run is dispatched to
    :func:`repro.bench.sweep.run_experiment` (the experiment is looked up
    by the function's name); positional args are bound to the function's
    signature so ``quick`` routes correctly.
    """
    jobs = _sweep_jobs()
    result = {}

    if jobs is None:
        def once():
            rows, text = fn(*args, **kwargs)
            result["rows"] = rows
            result["text"] = text
            return rows
    else:
        import inspect

        from repro.bench import sweep

        bound = inspect.signature(fn).bind(*args, **kwargs)
        quick = bound.arguments.pop("quick", True)

        def once():
            rows, text, _stats = sweep.run_experiment(
                fn.__name__, quick=quick, jobs=jobs, **bound.arguments)
            result["rows"] = rows
            result["text"] = text
            return rows

    benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(result["text"])
    return result["rows"]
