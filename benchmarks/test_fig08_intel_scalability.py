"""Fig. 8: the advantage persists (smaller) on the Intel SPR model."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig08_intel_scalability(benchmark, quick):
    series = run_experiment(benchmark, experiments.fig08_intel_scalability, quick)
    charm = dict(series["bfs/charm"])
    ring = dict(series["bfs/ring"])
    single_socket = max(c for c in charm if c <= 48)
    # CHARM leads within one socket on Intel too...
    assert charm[single_socket] > ring[single_socket]
