"""Fig. 1: headline CHARM speedups vs NUMA-aware systems."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig01_summary(benchmark, quick):
    rows = run_experiment(benchmark, experiments.fig01_summary, quick)
    by_domain = {r["domain"]: r["speedup_vs_numa_aware"] for r in rows}
    # CHARM must beat the NUMA-aware comparator in every domain it targets.
    assert all(v > 1.0 for v in by_domain.values()), by_domain
