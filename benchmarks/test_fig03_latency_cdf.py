"""Fig. 3: stepped core-to-core latency CDF on the Milan model."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig03_latency_cdf(benchmark):
    rows = run_experiment(benchmark, experiments.fig03_latency_cdf)
    p50 = {r["group"]: r["p50_ns"] for r in rows}
    # Paper: ~25 ns intra-chiplet, 80-155 ns within-NUMA, >200 ns across.
    assert 20 <= p50["same_chiplet"] <= 35
    assert 80 <= p50["same_numa"] <= 170
    assert p50["cross_numa"] > 200
    assert p50["same_chiplet"] < p50["same_numa"] < p50["cross_numa"]
