"""Fig. 9: streamcluster speedup, CHARM vs SHOAL."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig09_streamcluster(benchmark, quick):
    series = run_experiment(benchmark, experiments.fig09_streamcluster, quick)
    charm = dict(series["charm"])
    shoal = dict(series["shoal"])
    # Mid-range peak; CHARM >= SHOAL at low/mid counts; collapse at 128.
    peak_c = max(charm.values())
    assert peak_c > 8
    assert charm[24] >= shoal[24] * 0.98
    assert charm[8] > shoal[8]
    assert charm[128] < peak_c / 2
