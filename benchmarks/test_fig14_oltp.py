"""Fig. 14: OLTP commits/s are insensitive to chiplet placement."""

from conftest import run_experiment

from repro.bench import experiments


def test_fig14_oltp(benchmark, quick):
    series = run_experiment(benchmark, experiments.fig14_oltp, quick)
    for wl in ("ycsb", "tpcc"):
        local = dict(series[f"{wl}/local"])
        dist = dict(series[f"{wl}/distributed"])
        for c in local:
            ratio = local[c] / dist[c]
            # Paper: "nearly identical performance between LocalCache and
            # DistributedCache... across all core counts".
            assert 0.85 < ratio < 1.18, (wl, c, ratio)
