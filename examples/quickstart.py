#!/usr/bin/env python
"""Quickstart: run parallel tasks on a simulated chiplet machine with CHARM.

Builds the scaled dual-socket AMD EPYC Milan model, starts a CHARM runtime
with 16 workers, runs a task on every worker (the paper's ``all_do``),
performs a synchronous RPC, and prints the run report.
"""

from repro import Charm, Compute, milan
from repro.runtime.api import co_call_sync
from repro.runtime.ops import AccessBatch, YieldPoint


def main() -> None:
    machine = milan(scale=32)
    print("Machine:", machine.describe())

    charm = Charm.init(machine=machine, workers=16, seed=7)
    data = charm.alloc(4 << 20, name="data")  # 4 MiB shared array

    def worker_body(wid: int):
        """Each worker scans a private slice of the array twice."""
        blocks = list(range(wid * 64, (wid + 1) * 64))
        for _ in range(2):
            yield AccessBatch(data, blocks)
            yield YieldPoint()  # cooperative yield: the profiler hook runs here
        yield Compute(1_000.0)  # 1 us of CPU work
        return wid

    def rpc_target(x: int):
        yield Compute(100.0)
        return x * 2

    def main_task():
        # Synchronous RPC to worker 3 (the paper's call() API).
        doubled = yield from co_call_sync(charm, 3, rpc_target, 21)
        return doubled

    tasks = charm.all_do(worker_body)
    root = charm.spawn(main_task)
    report = charm.run()

    print(f"RPC result: {root.result}")
    print(f"Workers finished: {sorted(t.result for t in tasks)}")
    print(f"Virtual wall time: {report.wall_ns / 1e3:.1f} us")
    print(f"Fill counters: {report.counters.as_row()}")
    charm.finalize()


if __name__ == "__main__":
    main()
