#!/usr/bin/env python
"""Watch Alg. 1 adapt: spread_rate follows the working-set size.

Runs the same random-access loop over a small working set (fits one L3
slice) and a large one (needs the socket's aggregate L3) and shows how
the decentralised policy compacts or spreads the workers' chiplet
footprint — the paper's adaptive cache partitioning (sections 4.2/4.3).
"""

from repro.hw.machine import milan
from repro.runtime.ops import AccessBatch, YieldPoint
from repro.runtime.policy import CharmStrategy
from repro.runtime.profiler import sample_workers
from repro.runtime.runtime import Runtime


def run(size_bytes: int) -> None:
    machine = milan(scale=32)
    rt = Runtime(machine, 8, CharmStrategy(), seed=3)
    region = rt.alloc_shared(size_bytes, name="working-set")
    n = region.n_blocks

    def body(wid: int):
        for r in range(80):
            lo = (wid * 97 + r * 31) % max(n - 16, 1)
            yield AccessBatch(region, list(range(lo, lo + 16)))
            yield YieldPoint()
        return wid

    for w in range(8):
        rt.spawn(body, w, pin_worker=w)
    report = rt.run()

    samples = sample_workers(rt)
    chiplets = sorted({s.chiplet for s in samples})
    spreads = [s.spread_rate for s in samples]
    print(f"working set {size_bytes >> 10:6d} KiB -> "
          f"chiplets used {chiplets}, spread_rates {spreads}, "
          f"migrations {report.migrations}, "
          f"dram fills {report.counters.dram}")


def main() -> None:
    l3 = milan(scale=32).l3_bytes_per_chiplet
    print(f"L3 slice: {l3 >> 10} KiB per chiplet, 8 chiplets per socket\n")
    print("Small working set (fits one slice) -> CHARM stays compact:")
    run(l3 // 8)
    print("\nLarge working set (needs aggregate L3) -> CHARM spreads:")
    run(l3 * 8)


if __name__ == "__main__":
    main()
