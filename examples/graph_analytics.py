#!/usr/bin/env python
"""Graph analytics: BFS + PageRank under CHARM vs the RING baseline.

Reproduces a slice of the paper's Fig. 7 interactively: generates a
Kronecker graph, runs two algorithms under both runtimes at a few core
counts, and prints throughput plus the Tab. 1-style fill-counter contrast.
"""

from repro.baselines import RingStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph import kronecker, run_graph_algorithm


def main() -> None:
    graph = kronecker(scale=14, edgefactor=16, seed=2)
    print(f"Kronecker graph: {graph.n} vertices, {graph.m} directed edges, "
          f"{graph.adjacency_bytes >> 20} MiB adjacency")

    for algo in ("bfs", "pagerank"):
        print(f"\n== {algo} ==")
        for cores in (8, 32, 64):
            charm = run_graph_algorithm(milan(scale=32), CharmStrategy(), algo,
                                        graph, cores, seed=5, pagerank_iterations=3)
            ring = run_graph_algorithm(milan(scale=32), RingStrategy(), algo,
                                       graph, cores, seed=5, pagerank_iterations=3)
            print(f"  {cores:3d} cores: CHARM {charm.mteps:8.0f} MTEPS  "
                  f"RING {ring.mteps:8.0f} MTEPS  "
                  f"(speedup {charm.mteps / ring.mteps:4.2f}x)")

    print("\nFill counters at 64 cores (BFS) — the Tab. 1 story:")
    for name, strategy in (("CHARM", CharmStrategy()), ("RING", RingStrategy())):
        res = run_graph_algorithm(milan(scale=32), strategy, "bfs", graph, 64, seed=5)
        c = res.report.counters
        print(f"  {name:6s} remote-NUMA fills: {c.remote_numa_chiplet:8d}   "
              f"local-chiplet fills: {c.local_chiplet + c.remote_chiplet:8d}")


if __name__ == "__main__":
    main()
