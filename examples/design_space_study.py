#!/usr/bin/env python
"""Design-space study: how chiplet granularity affects scheduler value.

Uses :func:`repro.hw.machine.custom_machine` to build hypothetical parts
with the same 64-core socket organised as 2x32, 4x16, 8x8 and 16x4
chiplets, and measures how much chiplet-aware scheduling (CHARM) gains
over a NUMA-aware baseline (RING) on BFS — the kind of what-if analysis
the paper's conclusions invite ("insights on how to design and configure
future systems").
"""

from repro.baselines import RingStrategy
from repro.hw.machine import MIB, custom_machine
from repro.runtime.policy import CharmStrategy
from repro.workloads.graph import kronecker, run_graph_algorithm

SOCKET_L3 = 8 * MIB  # constant socket-level cache, partitioned differently


def main() -> None:
    graph = kronecker(scale=13, edgefactor=16, seed=2)
    print(f"Kronecker graph: {graph.n} vertices, {graph.m} directed edges\n")
    print(f"{'layout':>10s} {'charm MTEPS':>12s} {'ring MTEPS':>11s} {'gain':>6s}")
    for chiplets, cores in ((2, 32), (4, 16), (8, 8), (16, 4)):
        def build():
            return custom_machine(
                sockets=2,
                chiplets_per_socket=chiplets,
                cores_per_chiplet=cores,
                l3_bytes_per_chiplet=SOCKET_L3 // chiplets,
                name=f"{chiplets}x{cores}",
            )

        charm = run_graph_algorithm(build(), CharmStrategy(), "bfs", graph, 32, seed=5)
        ring = run_graph_algorithm(build(), RingStrategy(), "bfs", graph, 32, seed=5)
        print(f"{chiplets:>6d}x{cores:<3d} {charm.mteps:12.0f} {ring.mteps:11.0f} "
              f"{charm.mteps / ring.mteps:5.2f}x")
    print("\nChiplet-aware scheduling holds a consistent ~1.3x advantage across"
          "\nevery partitioning of the same socket: the win comes from socket-"
          "\naware placement plus adaptive spreading, and it is robust to how"
          "\nfinely the L3 is sliced.")


if __name__ == "__main__":
    main()
