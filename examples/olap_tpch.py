#!/usr/bin/env python
"""OLAP: TPC-H-shaped queries on the mini column store, stock vs +CHARM.

The paper's Fig. 13 experiment in miniature: run a selection of the 22
queries at 8 cores under the stock (placement-oblivious) thread mapping
and under CHARM's adaptive controller, and report per-query times.
"""

from repro.baselines.vanilla import VanillaStrategy
from repro.hw.machine import milan
from repro.runtime.policy import CharmStrategy
from repro.workloads.olap import QUERIES, generate, run_query


def main() -> None:
    data = generate(sf=4.0, seed=42)
    print(f"TPC-H-shaped dataset: lineitem {data.rows('lineitem'):,} rows, "
          f"orders {data.rows('orders'):,} rows (sf=4, scaled)\n")
    print(f"{'query':6s} {'kind':5s} {'stock ms':>9s} {'charm ms':>9s} {'speedup':>8s}")
    for q in ("q1", "q3", "q5", "q6", "q9", "q10", "q14", "q18"):
        stock = run_query(milan(scale=32), VanillaStrategy(), 8, data, q)
        charm = run_query(milan(scale=32), CharmStrategy(), 8, data, q)
        assert abs(stock.value - charm.value) <= 1e-9 * max(1.0, abs(stock.value))
        print(f"{q:6s} {QUERIES[q][1]:5s} {stock.ms:9.3f} {charm.ms:9.3f} "
              f"{stock.wall_ns / charm.wall_ns:8.2f}")
    print("\n(values verified identical across schedulers)")


if __name__ == "__main__":
    main()
